/**
 * dcglint behaviour on the fixture trees under tests/lint/fixtures/:
 * exact diagnostics (check, file, line, message substrings) and exit
 * codes, including the clean tree and the anchor-enforcement mode the
 * repo-wide ctest uses.
 */

#include "lint/lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#ifndef DCG_LINT_FIXTURES
#error "DCG_LINT_FIXTURES must point at tests/lint/fixtures"
#endif

namespace dcg::lint {
namespace {

std::string
fixture(const std::string &name)
{
    return std::string(DCG_LINT_FIXTURES) + "/" + name;
}

bool
hasDiag(const std::vector<Diagnostic> &diags, const std::string &check,
        const std::string &needle)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic &d) {
                           return d.check == check &&
                                  d.message.find(needle) !=
                                      std::string::npos;
                       });
}

TEST(Dcglint, CleanTreePasses)
{
    LintOptions opts;
    opts.root = fixture("clean");
    opts.requireAnchors = true;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0);
    EXPECT_NE(out.str().find("dcglint: clean"), std::string::npos);
}

TEST(Dcglint, OrphanedActivityCounterIsCaught)
{
    LintOptions opts;
    opts.root = fixture("orphan_counter");
    const std::vector<Diagnostic> diags = checkActivityCounters(opts);

    // Exactly two findings: orphanCtr is written but never consumed,
    // ghostCtr is consumed but never written. usedCtr is healthy.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_TRUE(hasDiag(diags, "activity-counter",
                        "'orphanCtr' is never consumed"));
    EXPECT_TRUE(hasDiag(diags, "activity-counter",
                        "'ghostCtr' is never written"));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.file, "src/pipeline/activity.hh");
        EXPECT_GT(d.line, 0);
    }

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
    EXPECT_NE(out.str().find("2 finding(s)"), std::string::npos);
}

TEST(Dcglint, UncheckedSyscallIsCaught)
{
    LintOptions opts;
    opts.root = fixture("unchecked_syscall");
    const std::vector<Diagnostic> diags = checkSyscallReturns(opts);

    // Only the discarded fcntl() is flagged; the checked bind(), the
    // assigned listen(), the (void) shutdown() and the allowlisted
    // close() are all fine.
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "syscall-return");
    EXPECT_EQ(diags[0].file, "src/serve/conn.cc");
    EXPECT_NE(diags[0].message.find("fcntl"), std::string::npos);

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, RawNetIoCallsAreCaught)
{
    LintOptions opts;
    opts.root = fixture("raw_netio");
    const std::vector<Diagnostic> diags = checkNetIo(opts);

    // The raw poll/read/send calls are flagged; the net::writeRetry
    // wrapper, the member sock.read() and the declarations are not.
    ASSERT_EQ(diags.size(), 3u);
    EXPECT_TRUE(hasDiag(diags, "net-io", "raw poll()"));
    EXPECT_TRUE(hasDiag(diags, "net-io", "raw read()"));
    EXPECT_TRUE(hasDiag(diags, "net-io", "raw send()"));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.file, "src/serve/conn.cc");
        EXPECT_GT(d.line, 0);
    }

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, NakedNewAndDeleteAreCaught)
{
    LintOptions opts;
    opts.root = fixture("naked_new");
    const std::vector<Diagnostic> diags = checkNakedNew(opts);

    // new int(7) and delete p — but not "= delete" nor the words in
    // comments or string literals.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_TRUE(hasDiag(diags, "naked-new", "naked 'new'"));
    EXPECT_TRUE(hasDiag(diags, "naked-new", "naked 'delete'"));
}

TEST(Dcglint, UnlistedStatIsCaught)
{
    LintOptions opts;
    opts.root = fixture("unlisted_stat");
    const std::vector<Diagnostic> diags = checkStatsReported(opts);

    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "stat-report");
    EXPECT_EQ(diags[0].file, "src/pipeline/core.cc");
    EXPECT_NE(diags[0].message.find("core.unlisted"),
              std::string::npos);
}

TEST(Dcglint, UnlistedSchemeIsCaught)
{
    LintOptions opts;
    opts.root = fixture("unlisted_scheme");
    const std::vector<Diagnostic> diags = checkSchemeRegistry(opts);

    // "rogue" is registered but absent from EXPERIMENTS.md; the
    // documented "demo" registration in the same tree passes.
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "scheme-registry");
    EXPECT_EQ(diags[0].file, "src/gating/rogue.cc");
    EXPECT_GT(diags[0].line, 0);
    EXPECT_NE(diags[0].message.find("'rogue'"), std::string::npos);
    EXPECT_NE(diags[0].message.find("EXPERIMENTS.md"),
              std::string::npos);

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, CheckSelectionFilters)
{
    // The orphan_counter tree is dirty for activity-counter but clean
    // for every other check.
    LintOptions opts;
    opts.root = fixture("orphan_counter");
    opts.checks = {"syscall-return", "naked-new"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0);
}

TEST(Dcglint, UnknownCheckIsConfigError)
{
    LintOptions opts;
    opts.root = fixture("clean");
    opts.checks = {"no-such-check"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 2);
}

TEST(Dcglint, BadRootIsConfigError)
{
    LintOptions opts;
    opts.root = fixture("does_not_exist");
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 2);
}

TEST(Dcglint, MissingAnchorsAreConfigErrorsOnlyWhenRequired)
{
    // unchecked_syscall has no activity.hh / report.cc anchors: the
    // anchored checks silently skip by default (fixture mode)...
    LintOptions opts;
    opts.root = fixture("unchecked_syscall");
    EXPECT_TRUE(checkActivityCounters(opts).empty());
    EXPECT_TRUE(checkStatsReported(opts).empty());

    // ...but the repo-wide mode treats a missing anchor as exit 2, so
    // renaming activity.hh cannot silently disable the invariant.
    opts.requireAnchors = true;
    opts.checks = {"activity-counter"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 2);
    EXPECT_NE(out.str().find("anchor"), std::string::npos);
}

TEST(Dcglint, DiagnosticFormatting)
{
    Diagnostic d{"src/a.cc", 12, "naked-new", "msg"};
    EXPECT_EQ(formatDiagnostic(d), "src/a.cc:12: [naked-new] msg");
    d.line = 0;
    EXPECT_EQ(formatDiagnostic(d), "src/a.cc: [naked-new] msg");
}

TEST(Dcglint, RepoTreeIsClean)
{
    // The real repository must satisfy its own invariants. The ctest
    // driver also runs the dcglint binary against the source root;
    // this in-process variant pins the library behaviour.
    LintOptions opts;
    opts.root = DCG_LINT_REPO_ROOT;
    opts.requireAnchors = true;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0) << out.str();
}

} // namespace
} // namespace dcg::lint
