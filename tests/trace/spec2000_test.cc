/** Tests for the SPEC2000 profile catalogue. */

#include <gtest/gtest.h>

#include <set>

#include "trace/spec2000.hh"

using namespace dcg;

TEST(Spec2000, EightIntAndEightFp)
{
    EXPECT_EQ(specIntProfiles().size(), 8u);
    EXPECT_EQ(specFpProfiles().size(), 8u);
    EXPECT_EQ(allSpecProfiles().size(), 16u);
}

TEST(Spec2000, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : allSpecProfiles())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Spec2000, IntProfilesHaveNoFpWorkToSpeakOf)
{
    for (const auto &p : specIntProfiles()) {
        const double fp = p.mixFraction(OpClass::FpAlu) +
                          p.mixFraction(OpClass::FpMult) +
                          p.mixFraction(OpClass::FpDiv);
        EXPECT_LT(fp, 0.05) << p.name;
        EXPECT_FALSE(p.isFp) << p.name;
    }
}

TEST(Spec2000, FpProfilesHaveSubstantialFpWork)
{
    for (const auto &p : specFpProfiles()) {
        const double fp = p.mixFraction(OpClass::FpAlu) +
                          p.mixFraction(OpClass::FpMult) +
                          p.mixFraction(OpClass::FpDiv);
        EXPECT_GT(fp, 0.30) << p.name;
        EXPECT_TRUE(p.isFp) << p.name;
    }
}

TEST(Spec2000, MixesAreNormalisedDistributions)
{
    for (const auto &p : allSpecProfiles()) {
        double total = 0.0;
        for (double w : p.mix) {
            EXPECT_GE(w, 0.0) << p.name;
            total += w;
        }
        EXPECT_NEAR(total, 1.0, 0.02) << p.name;
    }
}

TEST(Spec2000, MemoryFractionsNormalised)
{
    for (const auto &p : allSpecProfiles()) {
        const double m = p.memory.fracStack + p.memory.fracStride +
                         p.memory.fracRandom;
        EXPECT_NEAR(m, 1.0, 0.02) << p.name;
    }
}

TEST(Spec2000, BranchMixturesNormalised)
{
    for (const auto &p : allSpecProfiles()) {
        const auto &b = p.branches;
        EXPECT_NEAR(b.fracStronglyTaken + b.fracStronglyNotTaken +
                    b.fracLoop + b.fracRandom, 1.0, 0.02) << p.name;
    }
}

TEST(Spec2000, StallOutliersHaveHugePointerRegions)
{
    // The paper singles out mcf and lucas as the stall-heavy programs
    // with "unusually high cache miss rates" (Sec 5.1).
    const Profile mcf = profileByName("mcf");
    const Profile lucas = profileByName("lucas");
    EXPECT_GT(mcf.memory.randomRegionBytes, Addr{16} * 1024 * 1024);
    EXPECT_GT(lucas.memory.randomRegionBytes, Addr{16} * 1024 * 1024);
    EXPECT_GT(mcf.memory.fracRandom, 0.1);
}

TEST(Spec2000, PerlbmkHasNoFpUse)
{
    // Sec 5.2: integer codes like perlbmk "seldom use the FP units",
    // which is why DCG can gate their FPUs entirely.
    const Profile p = profileByName("perlbmk");
    EXPECT_DOUBLE_EQ(p.mixFraction(OpClass::FpAlu), 0.0);
    EXPECT_DOUBLE_EQ(p.mixFraction(OpClass::FpMult), 0.0);
}

TEST(Spec2000, LookupByNameRoundTrips)
{
    for (const auto &name : allSpecNames())
        EXPECT_EQ(profileByName(name).name, name);
}

TEST(Spec2000, UnknownNameIsFatal)
{
    EXPECT_EXIT(profileByName("not-a-benchmark"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Spec2000, CodeFootprintsFitInstructionCache)
{
    // The synthetic code model keeps footprints within the 64KB L1I
    // (DESIGN.md: large-footprint behaviour is not modelled).
    for (const auto &p : allSpecProfiles())
        EXPECT_LE(p.codeFootprintBytes, Addr{64} * 1024) << p.name;
}
