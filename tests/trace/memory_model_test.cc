/** Tests for the generator's memory address stream structure. */

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

Profile
memProfile()
{
    Profile p;
    p.name = "memtest";
    p.mix = {0.2, 0, 0, 0, 0, 0, 0.6, 0.2, 0.0};  // load/store heavy
    p.phases.lowIlpFraction = 0.0;
    return p;
}

constexpr Addr kStackBase = TraceGenerator::kDataBase;
constexpr Addr kStreamBase = TraceGenerator::kDataBase + 0x0100'0000;
constexpr Addr kRandomBase = TraceGenerator::kDataBase + 0x4000'0000;

} // namespace

TEST(MemoryModel, AddressesFallInDeclaredRegions)
{
    Profile p = memProfile();
    TraceGenerator g(p, 3);
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = g.next();
        if (!op.isMem())
            continue;
        const Addr a = op.effAddr;
        const bool in_stack =
            a >= kStackBase && a < kStackBase + p.memory.stackBytes;
        const bool in_stream =
            a >= kStreamBase &&
            a < kStreamBase + p.memory.strideRegionBytes;
        const bool in_random =
            a >= kRandomBase &&
            a < kRandomBase + p.memory.randomRegionBytes;
        ASSERT_TRUE(in_stack || in_stream || in_random)
            << std::hex << a;
    }
}

TEST(MemoryModel, RegionFrequenciesMatchFractions)
{
    Profile p = memProfile();
    p.memory.fracStack = 0.2;
    p.memory.fracStride = 0.5;
    p.memory.fracRandom = 0.3;
    TraceGenerator g(p, 5);
    int stack = 0, stream = 0, random = 0, total = 0;
    for (int i = 0; i < 200000; ++i) {
        const MicroOp op = g.next();
        if (!op.isMem())
            continue;
        ++total;
        if (op.effAddr < kStreamBase)
            ++stack;
        else if (op.effAddr < kRandomBase)
            ++stream;
        else
            ++random;
    }
    EXPECT_NEAR(stack / static_cast<double>(total), 0.2, 0.02);
    EXPECT_NEAR(stream / static_cast<double>(total), 0.5, 0.02);
    EXPECT_NEAR(random / static_cast<double>(total), 0.3, 0.02);
}

TEST(MemoryModel, StrideStreamsAdvanceMonotonically)
{
    Profile p = memProfile();
    p.memory.fracStack = 0.0;
    p.memory.fracStride = 1.0;
    p.memory.fracRandom = 0.0;
    p.memory.numStrideStreams = 1;
    p.memory.strideBytes = 16;
    TraceGenerator g(p, 7);
    Addr prev = 0;
    int wraps = 0;
    for (int i = 0; i < 5000; ++i) {
        const MicroOp op = g.next();
        if (!op.isMem())
            continue;
        if (prev != 0) {
            if (op.effAddr > prev)
                EXPECT_EQ(op.effAddr - prev, 16u);
            else
                ++wraps;  // region wrap-around
        }
        prev = op.effAddr;
    }
    EXPECT_LT(wraps, 10);
}

TEST(MemoryModel, RandomRegionCoversItsSize)
{
    Profile p = memProfile();
    p.memory.fracStack = 0.0;
    p.memory.fracStride = 0.0;
    p.memory.fracRandom = 1.0;
    p.memory.randomRegionBytes = 1 << 20;
    TraceGenerator g(p, 9);
    Addr min_a = ~Addr{0}, max_a = 0;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = g.next();
        if (!op.isMem())
            continue;
        min_a = std::min(min_a, op.effAddr);
        max_a = std::max(max_a, op.effAddr);
    }
    // Nearly the full 1MB span should be touched.
    EXPECT_LT(min_a - kRandomBase, Addr{64} * 1024);
    EXPECT_GT(max_a - kRandomBase, Addr{960} * 1024);
}

TEST(MemoryModel, LowPhaseShiftsTrafficToPointerRegion)
{
    Profile p = memProfile();
    p.memory.fracStack = 0.5;
    p.memory.fracStride = 0.45;
    p.memory.fracRandom = 0.05;
    p.phases.lowIlpFraction = 0.5;
    p.phases.meanPhaseLen = 2000;
    p.phases.lowMissScale = 4.0;
    TraceGenerator g(p, 11);
    int rand_high = 0, n_high = 0, rand_low = 0, n_low = 0;
    for (int i = 0; i < 300000; ++i) {
        const MicroOp op = g.next();
        if (!op.isMem())
            continue;
        const bool random = op.effAddr >= kRandomBase;
        if (g.inLowIlpPhase()) {
            rand_low += random;
            ++n_low;
        } else {
            rand_high += random;
            ++n_high;
        }
    }
    EXPECT_GT(rand_low / static_cast<double>(n_low),
              2.5 * rand_high / static_cast<double>(n_high));
}
