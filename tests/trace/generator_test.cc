/** Tests for the synthetic trace generator. */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

Profile
simpleProfile()
{
    Profile p;
    p.name = "test";
    p.mix = {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2, 0.1, 0.2};
    p.phases.lowIlpFraction = 0.0;  // stationary for these tests
    return p;
}

} // namespace

TEST(TraceGenerator, DeterministicPerSeed)
{
    const Profile p = simpleProfile();
    TraceGenerator a(p, 42), b(p, 42);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp x = a.next();
        const MicroOp y = b.next();
        EXPECT_EQ(x.cls, y.cls);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.effAddr, y.effAddr);
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.srcDist[0], y.srcDist[0]);
    }
}

TEST(TraceGenerator, DifferentSeedsProduceDifferentStreams)
{
    const Profile p = simpleProfile();
    TraceGenerator a(p, 1), b(p, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().cls == b.next().cls;
    EXPECT_LT(same, 900);
}

TEST(TraceGenerator, CountsGeneratedInstructions)
{
    TraceGenerator g(simpleProfile(), 1);
    for (int i = 0; i < 137; ++i)
        g.next();
    EXPECT_EQ(g.generated(), 137u);
}

TEST(TraceGenerator, MemOpsHaveAddressesOthersDoNot)
{
    TraceGenerator g(simpleProfile(), 7);
    for (int i = 0; i < 10000; ++i) {
        const MicroOp op = g.next();
        if (op.isMem())
            EXPECT_GE(op.effAddr, TraceGenerator::kDataBase);
        else
            EXPECT_EQ(op.effAddr, 0u);
    }
}

TEST(TraceGenerator, PcsStayInCodeFootprint)
{
    Profile p = simpleProfile();
    p.codeFootprintBytes = 16 * 1024;
    TraceGenerator g(p, 3);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = g.next();
        EXPECT_GE(op.pc, TraceGenerator::kCodeBase);
        EXPECT_LT(op.pc, TraceGenerator::kCodeBase + p.codeFootprintBytes);
        EXPECT_EQ(op.pc % 4, 0u);
    }
}

TEST(TraceGenerator, StoresAlwaysHaveTwoSources)
{
    TraceGenerator g(simpleProfile(), 5);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = g.next();
        if (op.isStore())
            EXPECT_EQ(op.numSrcs, 2u);
    }
}

TEST(TraceGenerator, DependenceDistancesRespectCap)
{
    Profile p = simpleProfile();
    p.deps.depDistCap = 16;
    TraceGenerator g(p, 9);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = g.next();
        for (unsigned s = 0; s < op.numSrcs; ++s)
            EXPECT_LE(op.srcDist[s], 16u);
    }
}

TEST(TraceGenerator, ReadyFractionMatchesProfile)
{
    Profile p = simpleProfile();
    p.deps.srcReadyProb = 0.7;
    p.deps.frac2Src = 0.0;  // exactly one source per op
    TraceGenerator g(p, 11);
    int ready = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = g.next();
        if (op.isStore())
            continue;  // store data source is re-rolled
        ++total;
        ready += op.srcDist[0] == 0;
    }
    EXPECT_NEAR(ready / static_cast<double>(total), 0.7, 0.02);
}

TEST(TraceGenerator, BranchPcsAreStableStatics)
{
    Profile p = simpleProfile();
    p.numStaticBranches = 32;
    TraceGenerator g(p, 13);
    // Each branch PC must always map to the same target set {target,
    // fallthrough} — i.e. branch identity is stable.
    std::map<Addr, Addr> target_of;
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = g.next();
        if (!op.isBranch())
            continue;
        auto [it, inserted] = target_of.emplace(op.pc, op.target);
        if (!inserted)
            EXPECT_EQ(it->second, op.target) << "pc " << std::hex << op.pc;
    }
    EXPECT_LE(target_of.size(), 32u);
    EXPECT_GE(target_of.size(), 16u);  // most statics get exercised
}

TEST(TraceGenerator, LoopBranchesArePeriodic)
{
    Profile p = simpleProfile();
    p.branches = {0.0, 0.0, 1.0, 0.0};  // all loop branches
    p.numStaticBranches = 1;
    TraceGenerator g(p, 17);
    // A single loop branch: exactly one not-taken per period.
    int taken_run = 0;
    std::map<int, int> run_lengths;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = g.next();
        if (!op.isBranch())
            continue;
        if (op.taken) {
            ++taken_run;
        } else {
            ++run_lengths[taken_run];
            taken_run = 0;
        }
    }
    // All runs between not-takens must have the same length (period-1).
    EXPECT_EQ(run_lengths.size(), 1u);
}

TEST(TraceGenerator, PhaseAlternationApproximatesFraction)
{
    Profile p = simpleProfile();
    p.phases.lowIlpFraction = 0.4;
    p.phases.meanPhaseLen = 500;
    TraceGenerator g(p, 19);
    std::uint64_t low = 0;
    const std::uint64_t n = 400000;
    for (std::uint64_t i = 0; i < n; ++i) {
        g.next();
        low += g.inLowIlpPhase();
    }
    EXPECT_NEAR(low / static_cast<double>(n), 0.4, 0.08);
}

TEST(TraceGenerator, PhasesDisabledStaysHigh)
{
    Profile p = simpleProfile();
    p.phases.lowIlpFraction = 0.0;
    TraceGenerator g(p, 21);
    for (int i = 0; i < 10000; ++i) {
        g.next();
        EXPECT_FALSE(g.inLowIlpPhase());
    }
}

TEST(TraceGenerator, LowPhaseShortensDependences)
{
    Profile p = simpleProfile();
    p.phases.lowIlpFraction = 0.5;
    p.phases.meanPhaseLen = 2000;
    p.deps.srcReadyProb = 0.6;
    TraceGenerator g(p, 23);
    double ready_high = 0, n_high = 0, ready_low = 0, n_low = 0;
    for (int i = 0; i < 200000; ++i) {
        const MicroOp op = g.next();
        if (op.isStore() || op.numSrcs == 0)
            continue;
        if (g.inLowIlpPhase()) {
            ready_low += op.srcDist[0] == 0;
            ++n_low;
        } else {
            ready_high += op.srcDist[0] == 0;
            ++n_high;
        }
    }
    EXPECT_GT(ready_high / n_high, ready_low / n_low + 0.2);
}

/** Instruction-mix convergence for every shipped SPEC2000 profile. */
class MixConvergence : public ::testing::TestWithParam<Profile> {};

TEST_P(MixConvergence, EmpiricalMixMatchesProfile)
{
    const Profile &p = GetParam();
    TraceGenerator g(p, 33);
    std::array<std::uint64_t, kNumOpClasses> counts{};
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<unsigned>(g.next().cls)];
    for (unsigned c = 0; c < kNumOpClasses; ++c) {
        const double want = p.mixFraction(static_cast<OpClass>(c));
        const double got = counts[c] / static_cast<double>(n);
        EXPECT_NEAR(got, want, 0.01)
            << p.name << " class " << opClassName(static_cast<OpClass>(c));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecProfiles, MixConvergence,
    ::testing::ValuesIn(allSpecProfiles()),
    [](const ::testing::TestParamInfo<Profile> &info) {
        return info.param.name;
    });
