/** Tests for the micro-op class/latency model. */

#include <gtest/gtest.h>

#include "isa/micro_op.hh"
#include "isa/op_class.hh"

using namespace dcg;

TEST(OpClass, LatenciesMatchSimpleScalarDefaults)
{
    EXPECT_EQ(opTiming(OpClass::IntAlu).latency, 1u);
    EXPECT_EQ(opTiming(OpClass::IntMult).latency, 3u);
    EXPECT_EQ(opTiming(OpClass::IntDiv).latency, 20u);
    EXPECT_EQ(opTiming(OpClass::FpAlu).latency, 2u);
    EXPECT_EQ(opTiming(OpClass::FpMult).latency, 4u);
    EXPECT_EQ(opTiming(OpClass::FpDiv).latency, 12u);
}

TEST(OpClass, UnpipelinedUnitsHaveLongIssueRate)
{
    EXPECT_GT(opTiming(OpClass::IntDiv).issueRate, 1u);
    EXPECT_GT(opTiming(OpClass::FpDiv).issueRate, 1u);
    EXPECT_EQ(opTiming(OpClass::IntAlu).issueRate, 1u);
    EXPECT_EQ(opTiming(OpClass::FpMult).issueRate, 1u);
}

TEST(OpClass, FuMappingFollowsTable1Pools)
{
    EXPECT_EQ(opFuType(OpClass::IntAlu), FuType::IntAluUnit);
    EXPECT_EQ(opFuType(OpClass::IntMult), FuType::IntMulDivUnit);
    EXPECT_EQ(opFuType(OpClass::IntDiv), FuType::IntMulDivUnit);
    EXPECT_EQ(opFuType(OpClass::FpAlu), FuType::FpAluUnit);
    EXPECT_EQ(opFuType(OpClass::FpMult), FuType::FpMulDivUnit);
    EXPECT_EQ(opFuType(OpClass::FpDiv), FuType::FpMulDivUnit);
    // Loads/stores do AGEN on the integer ALUs (sim-outorder style).
    EXPECT_EQ(opFuType(OpClass::Load), FuType::IntAluUnit);
    EXPECT_EQ(opFuType(OpClass::Store), FuType::IntAluUnit);
    EXPECT_EQ(opFuType(OpClass::Branch), FuType::IntAluUnit);
}

TEST(OpClass, MemOpsIdentified)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::IntAlu));
    EXPECT_FALSE(isMemOp(OpClass::Branch));
}

TEST(OpClass, ResultWritersExcludeStoresAndBranches)
{
    EXPECT_TRUE(writesResult(OpClass::IntAlu));
    EXPECT_TRUE(writesResult(OpClass::Load));
    EXPECT_TRUE(writesResult(OpClass::FpDiv));
    EXPECT_FALSE(writesResult(OpClass::Store));
    EXPECT_FALSE(writesResult(OpClass::Branch));
}

TEST(OpClass, FpClassesIdentified)
{
    EXPECT_TRUE(isFpOp(OpClass::FpAlu));
    EXPECT_TRUE(isFpOp(OpClass::FpMult));
    EXPECT_TRUE(isFpOp(OpClass::FpDiv));
    EXPECT_FALSE(isFpOp(OpClass::IntMult));
    EXPECT_FALSE(isFpOp(OpClass::Load));
}

TEST(OpClass, NamesAreDistinct)
{
    for (unsigned i = 0; i < kNumOpClasses; ++i) {
        for (unsigned j = i + 1; j < kNumOpClasses; ++j) {
            EXPECT_STRNE(opClassName(static_cast<OpClass>(i)),
                         opClassName(static_cast<OpClass>(j)));
        }
    }
}

TEST(MicroOp, PredicatesFollowClass)
{
    MicroOp op;
    op.cls = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_TRUE(op.isMem());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isBranch());
    op.cls = OpClass::Branch;
    EXPECT_TRUE(op.isBranch());
    EXPECT_FALSE(op.isMem());
}
