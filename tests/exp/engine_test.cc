/**
 * Tests for the parallel experiment engine: determinism across worker
 * counts and execution orders, cache behaviour, and stat capture.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "exp/engine.hh"
#include "exp/grid.hh"
#include "sim/presets.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::exp;

namespace {

// Short runs keep the full suite fast; long enough that every scheme
// actually gates something.
constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

std::vector<Job>
smallGrid()
{
    std::vector<Job> jobs;
    for (const char *name : {"gzip", "mcf", "equake"}) {
        for (const char *s : {"base", "dcg", "plb-ext"}) {
            jobs.push_back(makeJob(profileByName(name), table1Config(s),
                                   kInsts, kWarmup));
        }
    }
    return jobs;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.totalEnergyPJ, b.totalEnergyPJ);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        EXPECT_EQ(a.componentPJ[c], b.componentPJ[c]);
    EXPECT_EQ(a.intUnitsPJ, b.intUnitsPJ);
    EXPECT_EQ(a.fpUnitsPJ, b.fpUnitsPJ);
    EXPECT_EQ(a.latchPJ, b.latchPJ);
    EXPECT_EQ(a.dcachePJ, b.dcachePJ);
    EXPECT_EQ(a.resultBusPJ, b.resultBusPJ);
    EXPECT_EQ(a.intUnitUtil, b.intUnitUtil);
    EXPECT_EQ(a.fpUnitUtil, b.fpUnitUtil);
    EXPECT_EQ(a.latchUtil, b.latchUtil);
    EXPECT_EQ(a.dcachePortUtil, b.dcachePortUtil);
    EXPECT_EQ(a.resultBusUtil, b.resultBusUtil);
    EXPECT_EQ(a.branchAccuracy, b.branchAccuracy);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.extraStats, b.extraStats);
}

} // namespace

TEST(Engine, ParallelMatchesSerialBitExactly)
{
    const auto jobs = smallGrid();
    Engine serial(1);
    Engine parallel(4);
    const auto s = serial.run(jobs);
    const auto p = parallel.run(jobs);
    ASSERT_EQ(s.size(), jobs.size());
    ASSERT_EQ(p.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectBitIdentical(s[i], p[i]);
}

TEST(Engine, ExecutionOrderDoesNotChangeResults)
{
    auto jobs = smallGrid();
    Engine forward(2);
    const auto fwd = forward.run(jobs);

    auto reversed = jobs;
    std::reverse(reversed.begin(), reversed.end());
    Engine backward(2);
    const auto bwd = backward.run(reversed);

    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectBitIdentical(fwd[i], bwd[jobs.size() - 1 - i]);
}

TEST(Engine, CacheReturnsSharedBaselineWithoutResimulating)
{
    Engine engine(2);
    const Job base = makeJob(profileByName("gzip"),
                             table1Config("base"), kInsts,
                             kWarmup);
    const Job dcg = makeJob(profileByName("gzip"),
                            table1Config("dcg"), kInsts,
                            kWarmup);

    const auto first = engine.run({base, dcg});
    EXPECT_EQ(engine.cacheMisses(), 2u);
    EXPECT_EQ(engine.cacheHits(), 0u);

    // A second figure needing the same baseline hits the cache.
    const auto second = engine.run({base});
    EXPECT_EQ(engine.cacheMisses(), 2u);
    EXPECT_EQ(engine.cacheHits(), 1u);
    expectBitIdentical(first[0], second[0]);

    // Duplicates inside one batch are simulated once too.
    Engine fresh(4);
    fresh.run({base, base, base, base});
    EXPECT_EQ(fresh.cacheMisses(), 1u);
    EXPECT_EQ(fresh.cacheHits(), 3u);
}

TEST(Engine, GridSharesBaselineAcrossRequests)
{
    Engine engine(2);
    GridRequest dcg_only;
    dcg_only.benchmarks = {"gzip", "mcf"};
    dcg_only.instructions = kInsts;
    dcg_only.warmup = kWarmup;

    GridRequest plb = dcg_only;
    plb.schemes = {"plb-ext"};

    const auto grid_a = runGrid(engine, dcg_only);
    ASSERT_EQ(grid_a.size(), 2u);
    EXPECT_EQ(engine.cacheMisses(), 4u);  // 2 base + 2 dcg

    // Second request re-uses both baselines; only PLB runs are new.
    const auto grid_b = runGrid(engine, plb);
    EXPECT_EQ(engine.cacheMisses(), 6u);
    EXPECT_EQ(engine.cacheHits(), 2u);
    expectBitIdentical(grid_a[0].base(), grid_b[0].base());
    expectBitIdentical(grid_a[1].base(), grid_b[1].base());
}

TEST(Engine, ResultsComeBackInRequestOrder)
{
    Engine engine(3);
    const auto jobs = smallGrid();
    const auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].benchmark, jobs[i].profile.name);
        EXPECT_EQ(results[i].scheme, jobs[i].config.scheme);
    }
}

TEST(Engine, CapturesRequestedStats)
{
    Engine engine(1);
    Job job = makeJob(profileByName("gzip"),
                      table1Config("plb-ext"), kInsts,
                      kWarmup);
    job.captureStats = {"plb.mode_transitions", "no.such.stat"};
    const RunResult r = engine.runOne(job);
    ASSERT_EQ(r.extraStats.size(), 2u);
    EXPECT_TRUE(r.extraStats.count("plb.mode_transitions"));
    // Unknown names record 0, matching StatRegistry::lookup().
    EXPECT_EQ(r.extraStats.at("no.such.stat"), 0.0);
}

TEST(Engine, WorkerCountResolution)
{
    EXPECT_GE(Engine::defaultJobs(), 1u);
    Engine five(5);
    EXPECT_EQ(five.workers(), 5u);
    Engine fallback(0);
    EXPECT_EQ(fallback.workers(), Engine::defaultJobs());
}

TEST(Engine, ConcurrentDuplicateJobsSimulateExactlyOnce)
{
    // Many threads race runOne() on a single key: exactly one claims
    // the cache slot and simulates; the rest either share its
    // in-flight execution or hit the finished entry. Either way the
    // results are bit-identical and only one simulation runs.
    constexpr unsigned kThreads = 16;
    Engine engine(4);
    const Job job = makeJob(profileByName("gzip"),
                            table1Config("dcg"), kInsts,
                            kWarmup);

    std::vector<RunResult> results(kThreads);
    std::vector<RunOutcome> outcomes(kThreads, RunOutcome::Simulated);
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ++ready;
            while (!go.load(std::memory_order_acquire)) {
            }
            results[i] = engine.runOne(job, &outcomes[i]);
        });
    }
    while (ready.load() != kThreads) {
    }
    go.store(true, std::memory_order_release);
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(engine.simulations(), 1u);
    EXPECT_EQ(engine.cacheMisses(), 1u);
    EXPECT_EQ(engine.cacheHits(), kThreads - 1);
    EXPECT_EQ(engine.cacheSize(), 1u);

    unsigned simulated = 0;
    for (RunOutcome o : outcomes) {
        EXPECT_TRUE(o == RunOutcome::Simulated ||
                    o == RunOutcome::Shared || o == RunOutcome::MemHit);
        if (o == RunOutcome::Simulated)
            ++simulated;
    }
    EXPECT_EQ(simulated, 1u);
    for (unsigned i = 1; i < kThreads; ++i)
        expectBitIdentical(results[0], results[i]);
}

TEST(Engine, TryCachedPeeksWithoutBlockingOrSimulating)
{
    Engine engine(1);
    const Job job = makeJob(profileByName("gzip"),
                            table1Config("base"), kInsts,
                            kWarmup);
    RunResult peeked;
    EXPECT_FALSE(engine.tryCached(job, peeked));
    EXPECT_EQ(engine.simulations(), 0u);

    const RunResult r = engine.runOne(job);
    ASSERT_TRUE(engine.tryCached(job, peeked));
    expectBitIdentical(r, peeked);
    EXPECT_EQ(engine.cacheHits(), 1u);
    EXPECT_EQ(engine.simulations(), 1u);
}

namespace {

/** Set/clear DCG_JOBS for one scope, restoring the old value after. */
class ScopedDcgJobs
{
  public:
    explicit ScopedDcgJobs(const char *value)
    {
        const char *old = std::getenv("DCG_JOBS");
        if (old)
            saved = old;
        had = old != nullptr;
        if (value)
            ::setenv("DCG_JOBS", value, 1);
        else
            ::unsetenv("DCG_JOBS");
    }

    ~ScopedDcgJobs()
    {
        if (had)
            ::setenv("DCG_JOBS", saved.c_str(), 1);
        else
            ::unsetenv("DCG_JOBS");
    }

  private:
    std::string saved;
    bool had = false;
};

} // namespace

TEST(Engine, DefaultJobsHonoursValidDcgJobs)
{
    ScopedDcgJobs env("3");
    EXPECT_EQ(Engine::defaultJobs(), 3u);
    Engine engine(0);
    EXPECT_EQ(engine.workers(), 3u);
}

TEST(Engine, DefaultJobsRejectsInvalidDcgJobs)
{
    // Satellite hardening: garbage, zero and negative DCG_JOBS values
    // fall back to the hardware default (with a warning) instead of
    // being silently coerced into some other worker count.
    unsigned fallback;
    {
        ScopedDcgJobs env(nullptr);
        fallback = Engine::defaultJobs();
    }
    ASSERT_GE(fallback, 1u);

    for (const char *bad : {"banana", "0", "-4", "3garbage", ""}) {
        ScopedDcgJobs env(bad);
        EXPECT_EQ(Engine::defaultJobs(), fallback)
            << "DCG_JOBS='" << bad << "'";
    }
}

TEST(Engine, ClearCacheForcesResimulation)
{
    Engine engine(1);
    const Job job = makeJob(profileByName("gzip"),
                            table1Config("base"), kInsts,
                            kWarmup);
    const RunResult a = engine.runOne(job);
    engine.clearCache();
    EXPECT_EQ(engine.cacheSize(), 0u);
    const RunResult b = engine.runOne(job);
    EXPECT_EQ(engine.cacheMisses(), 2u);
    expectBitIdentical(a, b);
}

TEST(Engine, LifecycleEvictToKeepsRecentlyUsedEntries)
{
    Engine engine(1);
    const Job a = makeJob(profileByName("gzip"),
                          table1Config("base"), kInsts,
                          kWarmup);
    const Job b = makeJob(profileByName("gzip"),
                          table1Config("dcg"), kInsts,
                          kWarmup);
    const Job c = makeJob(profileByName("mcf"),
                          table1Config("dcg"), kInsts,
                          kWarmup);
    engine.runOne(a);
    engine.runOne(b);
    engine.runOne(c);
    ASSERT_EQ(engine.entries(), 3u);
    const std::uint64_t full = engine.bytes();
    ASSERT_GT(full, 0u);

    // Touch 'a' so 'b' becomes the least recently used slot.
    engine.runOne(a);

    EXPECT_EQ(engine.evictTo(full - 1), 1u);
    EXPECT_EQ(engine.cacheSize(), 2u);
    EXPECT_LT(engine.bytes(), full);
    RunResult out;
    EXPECT_TRUE(engine.tryCached(a, out));
    EXPECT_TRUE(engine.tryCached(c, out));
    EXPECT_FALSE(engine.tryCached(b, out));

    // Evicting everything empties the accounting too.
    EXPECT_EQ(engine.evictTo(0), 2u);
    EXPECT_EQ(engine.bytes(), 0u);
    EXPECT_EQ(engine.cacheSize(), 0u);

    // The in-memory cache has nothing to compact.
    EXPECT_EQ(engine.compact(), 0u);
}

TEST(Engine, ClearCacheResetsByteAccounting)
{
    Engine engine(1);
    const Job job = makeJob(profileByName("gzip"),
                            table1Config("base"), kInsts,
                            kWarmup);
    engine.runOne(job);
    EXPECT_GT(engine.bytes(), 0u);
    engine.clearCache();
    EXPECT_EQ(engine.bytes(), 0u);
}
