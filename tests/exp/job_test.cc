/** Tests for Job key canonicalisation and seed derivation. */

#include <gtest/gtest.h>

#include "exp/job.hh"
#include "sim/presets.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::exp;

namespace {

Job
gzipJob(GatingScheme scheme = GatingScheme::Dcg)
{
    return makeJob(profileByName("gzip"), table1Config(scheme), 2000,
                   500);
}

} // namespace

TEST(JobKey, IdenticalJobsShareAKey)
{
    EXPECT_EQ(jobKey(gzipJob()), jobKey(gzipJob()));
}

TEST(JobKey, EveryRelevantFieldSeparatesKeys)
{
    const Job ref = gzipJob();

    Job other = gzipJob(GatingScheme::PlbExt);
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.instructions = 3000;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.warmup = 499;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.seed = 2;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.core.fuCount[0] = 4;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.tech.latchBitCap *= 1.0000001;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.profile = profileByName("mcf");
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.captureStats = {"plb.mode_transitions"};
    EXPECT_NE(jobKey(ref), jobKey(other));
}

TEST(JobKey, AdjacentFieldsDoNotMerge)
{
    // "1","23" vs "12","3" style collisions must be impossible.
    Job a = gzipJob();
    a.instructions = 1;
    a.warmup = 23;
    Job b = gzipJob();
    b.instructions = 12;
    b.warmup = 3;
    EXPECT_NE(jobKey(a), jobKey(b));
}

TEST(JobKey, ZeroRunLengthsResolveToDefaults)
{
    Job implicit = gzipJob();
    implicit.instructions = 0;
    implicit.warmup = 0;
    Job expl = gzipJob();
    expl.instructions = defaultBenchInstructions();
    expl.warmup = defaultBenchWarmup();
    EXPECT_EQ(jobKey(implicit), jobKey(expl));
}

TEST(JobSeed, DeterministicAndSchemeIndependent)
{
    EXPECT_EQ(deriveJobSeed(gzipJob()), deriveJobSeed(gzipJob()));

    // All schemes of one benchmark must replay the same instruction
    // stream (the paper compares schemes on identical traces).
    EXPECT_EQ(deriveJobSeed(gzipJob(GatingScheme::None)),
              deriveJobSeed(gzipJob(GatingScheme::PlbExt)));

    // Run length does not perturb the stream either.
    Job longer = gzipJob();
    longer.instructions = 100000;
    EXPECT_EQ(deriveJobSeed(gzipJob()), deriveJobSeed(longer));
}

TEST(JobSeed, WorkloadsGetIndependentStreams)
{
    Job mcf = gzipJob();
    mcf.profile = profileByName("mcf");
    EXPECT_NE(deriveJobSeed(gzipJob()), deriveJobSeed(mcf));

    Job reseeded = gzipJob();
    reseeded.config.seed = 2;
    EXPECT_NE(deriveJobSeed(gzipJob()), deriveJobSeed(reseeded));
}
