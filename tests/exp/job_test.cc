/** Tests for Job key canonicalisation and seed derivation. */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "exp/job.hh"
#include "gating/registry.hh"
#include "sim/presets.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::exp;

namespace {

Job
gzipJob(const std::string &scheme = "dcg")
{
    return makeJob(profileByName("gzip"), table1Config(scheme), 2000,
                   500);
}

} // namespace

TEST(JobKey, IdenticalJobsShareAKey)
{
    EXPECT_EQ(jobKey(gzipJob()), jobKey(gzipJob()));
}

TEST(JobKey, EveryRelevantFieldSeparatesKeys)
{
    const Job ref = gzipJob();

    Job other = gzipJob("plb-ext");
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.instructions = 3000;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.warmup = 499;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.seed = 2;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.core.fuCount[0] = 4;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.tech.latchBitCap *= 1.0000001;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.profile = profileByName("mcf");
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.captureStats = {"plb.mode_transitions"};
    EXPECT_NE(jobKey(ref), jobKey(other));
}

TEST(JobKey, EveryRegisteredSchemeGetsItsOwnKey)
{
    // Regression for the src/exp/job.hh comment bug: the *seed*
    // derivation ignores the scheme, the *key* must not — otherwise
    // the result cache would serve one scheme's numbers for another.
    // Checked pairwise over the whole registry so a new scheme cannot
    // collide with an existing one either.
    std::map<std::string, std::string> keys;
    for (const std::string &scheme : gating::schemeNames())
        keys[jobKey(gzipJob(scheme))] = scheme;
    EXPECT_EQ(keys.size(), gating::schemeNames().size());
}

TEST(JobKey, SchemeConfigFieldsSeparateKeys)
{
    // Per-scheme knobs are part of the key: the same scheme with a
    // different configuration is a different simulation.
    const Job ref = gzipJob();

    Job other = gzipJob();
    other.config.ddcg.bitActivityFactor = 0.5;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.cgooo.blockSize = 8;
    EXPECT_NE(jobKey(ref), jobKey(other));

    other = gzipJob();
    other.config.dcg.gateIssueQueue = true;
    EXPECT_NE(jobKey(ref), jobKey(other));
}

TEST(JobKey, AdjacentFieldsDoNotMerge)
{
    // "1","23" vs "12","3" style collisions must be impossible.
    Job a = gzipJob();
    a.instructions = 1;
    a.warmup = 23;
    Job b = gzipJob();
    b.instructions = 12;
    b.warmup = 3;
    EXPECT_NE(jobKey(a), jobKey(b));
}

TEST(JobKey, ZeroRunLengthsResolveToDefaults)
{
    Job implicit = gzipJob();
    implicit.instructions = 0;
    implicit.warmup = 0;
    Job expl = gzipJob();
    expl.instructions = defaultBenchInstructions();
    expl.warmup = defaultBenchWarmup();
    EXPECT_EQ(jobKey(implicit), jobKey(expl));
}

TEST(JobSeed, DeterministicAndSchemeIndependent)
{
    EXPECT_EQ(deriveJobSeed(gzipJob()), deriveJobSeed(gzipJob()));

    // All schemes of one benchmark must replay the same instruction
    // stream (the paper compares schemes on identical traces).
    EXPECT_EQ(deriveJobSeed(gzipJob("base")),
              deriveJobSeed(gzipJob("plb-ext")));

    // Run length does not perturb the stream either.
    Job longer = gzipJob();
    longer.instructions = 100000;
    EXPECT_EQ(deriveJobSeed(gzipJob()), deriveJobSeed(longer));
}

TEST(JobSeed, WorkloadsGetIndependentStreams)
{
    Job mcf = gzipJob();
    mcf.profile = profileByName("mcf");
    EXPECT_NE(deriveJobSeed(gzipJob()), deriveJobSeed(mcf));

    Job reseeded = gzipJob();
    reseeded.config.seed = 2;
    EXPECT_NE(deriveJobSeed(gzipJob()), deriveJobSeed(reseeded));
}
