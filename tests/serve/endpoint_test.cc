/**
 * Tests for the shared --server/--peers endpoint-list parser: the one
 * canonical parse both dcgsim's client fan-out and dcgserved's ring
 * configuration run through.
 */

#include <gtest/gtest.h>

#include "serve/endpoint.hh"

using namespace dcg::serve;

TEST(Endpoint, ParsesHostPort)
{
    Endpoint ep;
    std::string err;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:7878", ep, err)) << err;
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 7878);
    EXPECT_EQ(ep.str(), "127.0.0.1:7878");
}

TEST(Endpoint, PortBoundsAreEnforced)
{
    Endpoint ep;
    std::string err;
    ASSERT_TRUE(parseEndpoint("h:1", ep, err));
    EXPECT_EQ(ep.port, 1);
    ASSERT_TRUE(parseEndpoint("h:65535", ep, err));
    EXPECT_EQ(ep.port, 65535);
    EXPECT_FALSE(parseEndpoint("h:0", ep, err));
    EXPECT_NE(err.find("out of range"), std::string::npos);
    EXPECT_FALSE(parseEndpoint("h:65536", ep, err));
    EXPECT_FALSE(parseEndpoint("h:-1", ep, err));
}

TEST(Endpoint, RejectsMalformedSingles)
{
    Endpoint ep;
    std::string err;
    EXPECT_FALSE(parseEndpoint("nocolon", ep, err));
    EXPECT_NE(err.find("expected HOST:PORT"), std::string::npos);
    EXPECT_FALSE(parseEndpoint(":7878", ep, err));
    EXPECT_NE(err.find("empty host"), std::string::npos);
    EXPECT_FALSE(parseEndpoint("h:", ep, err));
    EXPECT_NE(err.find("not a number"), std::string::npos);
    EXPECT_FALSE(parseEndpoint("h:googol", ep, err));
}

TEST(Endpoint, ParsesCommaSeparatedList)
{
    std::vector<Endpoint> eps;
    std::string err;
    ASSERT_TRUE(
        parseEndpoints("127.0.0.1:7878,127.0.0.1:7879,10.0.0.2:80",
                       eps, err))
        << err;
    ASSERT_EQ(eps.size(), 3u);
    EXPECT_EQ(eps[0].str(), "127.0.0.1:7878");
    EXPECT_EQ(eps[1].str(), "127.0.0.1:7879");
    EXPECT_EQ(eps[2].str(), "10.0.0.2:80");
    EXPECT_EQ(endpointStrings(eps).size(), 3u);
    EXPECT_EQ(endpointStrings(eps)[2], "10.0.0.2:80");
}

TEST(Endpoint, SingleElementListWorks)
{
    std::vector<Endpoint> eps;
    std::string err;
    ASSERT_TRUE(parseEndpoints("localhost:7878", eps, err)) << err;
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].host, "localhost");
}

TEST(Endpoint, RejectsMalformedLists)
{
    std::vector<Endpoint> eps;
    std::string err;

    EXPECT_FALSE(parseEndpoints("", eps, err));
    EXPECT_NE(err.find("empty server list"), std::string::npos);

    // Trailing comma.
    EXPECT_FALSE(parseEndpoints("h:1,", eps, err));
    EXPECT_NE(err.find("stray comma"), std::string::npos);

    // Leading comma and double comma.
    EXPECT_FALSE(parseEndpoints(",h:1", eps, err));
    EXPECT_FALSE(parseEndpoints("h:1,,h:2", eps, err));

    // A bad element anywhere poisons the list.
    EXPECT_FALSE(parseEndpoints("h:1,:2", eps, err));
    EXPECT_NE(err.find("empty host"), std::string::npos);
    EXPECT_FALSE(parseEndpoints("h:1,h:bad", eps, err));

    // Duplicates would double-weight a ring node.
    EXPECT_FALSE(parseEndpoints("h:1,h:2,h:1", eps, err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(Endpoint, ListErrorsNameTheOffendingElement)
{
    std::vector<Endpoint> eps;
    std::string err;

    // The error points at WHICH element of WHICH list failed — in a
    // long --peers flag "port is not a number" alone is useless.
    EXPECT_FALSE(parseEndpoints("h:1,h:2,h:bad,h:4", eps, err));
    EXPECT_NE(err.find("element 3"), std::string::npos) << err;
    EXPECT_NE(err.find("h:1,h:2,h:bad,h:4"), std::string::npos) << err;
    EXPECT_NE(err.find("'h:bad': port is not a number"),
              std::string::npos)
        << err;

    EXPECT_FALSE(parseEndpoints("nocolon", eps, err));
    EXPECT_NE(err.find("element 1"), std::string::npos) << err;
    EXPECT_NE(err.find("expected HOST:PORT"), std::string::npos) << err;

    // Duplicate reports name the full list too.
    EXPECT_FALSE(parseEndpoints("h:1,h:2,h:1", eps, err));
    EXPECT_NE(err.find("'h:1'"), std::string::npos) << err;
    EXPECT_NE(err.find("in list 'h:1,h:2,h:1'"), std::string::npos)
        << err;
}

TEST(Endpoint, FailedParseLeavesOutputUntouched)
{
    std::vector<Endpoint> eps;
    std::string err;
    ASSERT_TRUE(parseEndpoints("h:1", eps, err));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_FALSE(parseEndpoints("h:1,", eps, err));
    EXPECT_EQ(eps.size(), 1u);  // previous contents survive
    EXPECT_EQ(eps[0].str(), "h:1");
}
