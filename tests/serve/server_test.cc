/**
 * End-to-end tests for dcgserved's Server + Client: remote execution
 * bit-identical to a local Engine, the stats surface, backpressure on
 * a full queue, bad-request tolerance, warm resubmission, and the
 * cold-restart-from-store acceptance path (0 simulations).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "exp/engine.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::serve;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

/** Run a Server on an ephemeral port for the duration of a test. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServerConfig cfg = {})
    {
        cfg.host = "127.0.0.1";
        cfg.port = 0;
        if (!cfg.workers)
            cfg.workers = 2;
        server = std::make_unique<Server>(cfg);
        io = std::thread([this] { server->run(); });
    }

    ~ServerFixture()
    {
        server->requestStop();
        io.join();
    }

    std::string address() const
    {
        return "127.0.0.1:" + std::to_string(server->port());
    }

    Server &get() { return *server; }

  private:
    std::unique_ptr<Server> server;
    std::thread io;
};

std::vector<JobSpec>
smallGridSpecs()
{
    std::vector<JobSpec> specs;
    for (const char *bench : {"gzip", "mcf"}) {
        for (const char *scheme : {"base", "dcg"}) {
            JobSpec s;
            s.bench = bench;
            s.scheme = scheme;
            s.insts = kInsts;
            s.warmup = kWarmup;
            specs.push_back(s);
        }
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

std::string
freshDir(const std::string &tag)
{
    namespace fs = std::filesystem;
    const fs::path p = fs::temp_directory_path() /
        ("dcg_server_test_" + tag + "_" +
         std::to_string(::getpid()));
    fs::remove_all(p);
    return p.string();
}

} // namespace

TEST(Server, RemoteGridIsBitIdenticalToLocalRun)
{
    const auto specs = smallGridSpecs();

    // Local reference: the exact path dcgsim takes without --server.
    exp::Engine local(2);
    std::vector<exp::Job> jobs;
    for (const JobSpec &s : specs)
        jobs.push_back(s.toJob());
    const auto expected = local.run(jobs);

    ServerFixture fx;
    Client client(fx.address());
    const auto remote = client.runJobs(specs);

    ASSERT_EQ(remote.size(), expected.size());
    EXPECT_EQ(asJson(remote), asJson(expected));
}

TEST(Server, StatsReportQueueWorkersAndCacheCounters)
{
    ServerFixture fx;
    Client client(fx.address());
    const auto specs = smallGridSpecs();
    client.runJobs(specs);

    const JsonValue stats = client.stats();
    EXPECT_EQ(stats.get("workers").asU64(), 2u);
    EXPECT_EQ(stats.get("queue_depth").asU64(), 0u);
    EXPECT_EQ(stats.get("queue_capacity").asU64(), 256u);
    EXPECT_EQ(stats.get("jobs_submitted").asU64(), specs.size());
    EXPECT_EQ(stats.get("jobs_completed").asU64(), specs.size());
    EXPECT_EQ(stats.get("simulations").asU64(), specs.size());
    EXPECT_EQ(stats.get("cache_entries").asU64(), specs.size());
    EXPECT_EQ(stats.get("submits_rejected").asU64(), 0u);
    EXPECT_FALSE(stats.get("draining").asBool(true));
    EXPECT_GT(stats.get("latency_max_us").asU64(), 0u);

    // Resubmitting the same grid is answered from the in-memory cache
    // without occupying a worker or re-simulating.
    client.runJobs(specs);
    const JsonValue warm = client.stats();
    EXPECT_EQ(warm.get("simulations").asU64(), specs.size());
    EXPECT_EQ(warm.get("mem_hits").asU64(), specs.size());
    EXPECT_EQ(warm.get("jobs_completed").asU64(), 2 * specs.size());
}

TEST(Server, FullQueueRejectsWithRetryAfterHint)
{
    ServerConfig cfg;
    cfg.queueCapacity = 0;  // deterministic: every uncached submit spills
    cfg.retryAfterMs = 123;
    ServerFixture fx(cfg);
    Client client(fx.address());

    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("submit"));
    JobSpec s;
    s.insts = kInsts;
    s.warmup = kWarmup;
    req.set("job", s.toJson());

    const JsonValue resp = client.request(req);
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "busy");
    EXPECT_EQ(resp.get("retry_after_ms").asU64(), 123u);
    EXPECT_EQ(resp.get("queue_capacity").asU64(), 0u);

    const JsonValue stats = client.stats();
    EXPECT_EQ(stats.get("submits_rejected").asU64(), 1u);
    EXPECT_EQ(stats.get("jobs_submitted").asU64(), 0u);
}

TEST(Server, MalformedAndUnknownRequestsAreRejectedNotFatal)
{
    ServerFixture fx;
    Client client(fx.address());

    JsonValue bad = JsonValue::object();
    bad.set("op", JsonValue::string("frobnicate"));
    JsonValue resp = client.request(bad);
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "bad_request");

    // Unknown benchmark in an otherwise well-formed submit.
    JsonValue submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    JobSpec s;
    s.bench = "no_such_bench";
    submit.set("job", s.toJson());
    resp = client.request(submit);
    EXPECT_FALSE(resp.get("ok").asBool(true));

    // Unknown job id.
    JsonValue status = JsonValue::object();
    status.set("op", JsonValue::string("status"));
    status.set("id", JsonValue::integer(std::uint64_t{999999}));
    resp = client.request(status);
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "unknown_id");

    // The connection (and server) survived all of it.
    const JsonValue stats = client.stats();
    EXPECT_GE(stats.get("bad_requests").asU64(), 2u);
    EXPECT_EQ(stats.get("jobs_submitted").asU64(), 0u);
}

TEST(Server, ColdRestartServesGridEntirelyFromDisk)
{
    const std::string dir = freshDir("restart");
    const auto specs = smallGridSpecs();
    std::string firstJson;

    {
        ServerConfig cfg;
        cfg.storeDir = dir;
        ServerFixture fx(cfg);
        Client client(fx.address());
        firstJson = asJson(client.runJobs(specs));
        const JsonValue stats = client.stats();
        EXPECT_EQ(stats.get("simulations").asU64(), specs.size());
        EXPECT_EQ(stats.get("store_records").asU64(), specs.size());
    }  // server drains and exits — "process restart"

    {
        ServerConfig cfg;
        cfg.storeDir = dir;
        ServerFixture fx(cfg);
        Client client(fx.address());
        const std::string secondJson = asJson(client.runJobs(specs));
        EXPECT_EQ(firstJson, secondJson);

        // The acceptance bar: every job served from disk, zero
        // simulations in the restarted process.
        const JsonValue stats = client.stats();
        EXPECT_EQ(stats.get("simulations").asU64(), 0u);
        EXPECT_EQ(stats.get("disk_hits").asU64(), specs.size());
        EXPECT_EQ(stats.get("jobs_completed").asU64(), specs.size());
    }

    std::filesystem::remove_all(dir);
}

TEST(Server, StopWhileIdleDrainsCleanly)
{
    ServerFixture fx;
    Client client(fx.address());
    JobSpec s;
    s.insts = kInsts;
    s.warmup = kWarmup;
    const auto results = client.runJobs({s});
    ASSERT_EQ(results.size(), 1u);
    // ~ServerFixture requests the stop and joins run(); the test
    // passes iff that returns (no hang, no crash).
}
