/**
 * Multiplexed peer-link tests: the protocol-v4 PeerPool/LinkLoop layer
 * under fault injection. Jobs of deliberately different lengths prove
 * rid matching (out-of-order completions must still assemble into a
 * byte-identical in-order grid); a FaultProxy in front of the node
 * proves one persistent connection carries the whole pipelined grid,
 * and that Garbage / mid-frame byte-budget cuts kill the link cleanly
 * — in-flight requests fail over, the link reconnects, and no
 * response is ever delivered against the wrong request. A scripted
 * v3-only peer pins the legacy one-shot fallback path.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/engine.hh"
#include "exp/job.hh"
#include "serve/client.hh"
#include "serve/faultnet.hh"
#include "serve/peerlink.hh"
#include "serve/protocol.hh"
#include "serve/replica_cluster.hh"
#include "sim/report.hh"

using namespace dcg;
using namespace dcg::serve;
using namespace dcg::serve::testing;

namespace {

/**
 * Jobs of deliberately different lengths: on a node with two workers
 * the completions come back out of submit order, so a byte-identical
 * in-order grid is only possible if responses are matched by rid.
 */
std::vector<JobSpec>
variedSpecs()
{
    const std::uint64_t lens[] = {4000, 800,  2600, 1200, 3400, 600,
                                  2000, 1600, 3000, 1000, 2800, 1400};
    std::vector<JobSpec> specs;
    std::size_t i = 0;
    for (const char *bench : {"gzip", "mcf", "twolf"}) {
        for (const char *scheme : {"base", "dcg"}) {
            for (unsigned rep = 0; rep < 2; ++rep) {
                JobSpec s;
                s.bench = bench;
                s.scheme = scheme;
                s.insts = lens[i++ % 12];
                s.warmup = 200;
                s.seed = 1 + rep;
                specs.push_back(s);
            }
        }
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

std::string
localJson(const std::vector<JobSpec> &specs)
{
    exp::Engine local(2);
    std::vector<exp::Job> jobs;
    for (const JobSpec &s : specs)
        jobs.push_back(s.toJob());
    return asJson(local.run(jobs));
}

JsonValue
statsReq()
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("stats"));
    return req;
}

/** One plain node with a FaultProxy in front of it. */
class ProxiedNode
{
  public:
    ProxiedNode() : cluster(1, 1, "")
    {
        cluster.start();
        proxy = std::make_unique<FaultProxy>(cluster.endpoint(0));
    }

    FaultProxy &fault() { return *proxy; }
    Endpoint front() const { return proxy->address(); }

  private:
    ReplicaCluster cluster;
    std::unique_ptr<FaultProxy> proxy;
};

/**
 * A scripted peer that speaks protocol v3 and nothing newer: any
 * version-4 frame is bounced with a rid-less unsupported_version
 * naming supported=3 (exactly what a pre-mux dcgserved answers), and
 * v3 one-shot requests get a well-formed stats response. Each
 * connection serves one exchange, then closes — the pre-mux wire
 * behaviour the legacy fallback executor expects.
 */
class FakeV3Peer
{
  public:
    FakeV3Peer()
    {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            fatal("FakeV3Peer: socket: ", std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd, 8) != 0)
            fatal("FakeV3Peer: bind/listen: ", std::strerror(errno));
        socklen_t len = sizeof(addr);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&addr),
                          &len) != 0)
            fatal("FakeV3Peer: getsockname: ", std::strerror(errno));
        port = ntohs(addr.sin_port);
        acceptor = std::thread([this] { serveLoop(); });
    }

    ~FakeV3Peer()
    {
        stopping.store(true);
        ::shutdown(listenFd, SHUT_RDWR);
        ::close(listenFd);
        if (acceptor.joinable())
            acceptor.join();
    }

    Endpoint address() const { return Endpoint{"127.0.0.1", port}; }

    /** v3 requests answered (the one-shot fallback exchanges). */
    std::size_t v3Serves() const { return served.load(); }
    /** v4 frames bounced with unsupported_version. */
    std::size_t v4Bounces() const { return bounced.load(); }

  private:
    void serveLoop()
    {
        while (!stopping.load()) {
            const int c = ::accept(listenFd, nullptr, nullptr);
            if (c < 0) {
                if (stopping.load())
                    return;
                continue;
            }
            handle(c);
            ::close(c);
        }
    }

    void handle(int c)
    {
        std::string line;
        char ch = 0;
        while (::read(c, &ch, 1) == 1 && ch != '\n')
            line += ch;
        JsonValue req;
        std::string err;
        if (!JsonValue::parse(line, req, err))
            return;
        const std::uint64_t version = req.get("version").asU64(1);

        JsonValue resp;
        if (version > 3) {
            // Deliberately rid-less: a v3 server has never heard of
            // rids, and the pool must downgrade on this shape.
            resp = errorResponse("unsupported_version",
                                 "this peer speaks protocol 3");
            resp.set("supported",
                     JsonValue::integer(std::uint64_t{3}));
            ++bounced;
        } else {
            resp = okResponse();
            JsonValue stats = JsonValue::object();
            stats.set("simulations",
                      JsonValue::integer(std::uint64_t{0}));
            resp.set("stats", stats);
            ++served;
        }
        stampVersion(resp, static_cast<unsigned>(version));

        const std::string out = resp.dump() + "\n";
        std::size_t off = 0;
        while (off < out.size()) {
            const ssize_t w =
                ::write(c, out.data() + off, out.size() - off);
            if (w <= 0)
                return;
            off += static_cast<std::size_t>(w);
        }
    }

    int listenFd = -1;
    std::uint16_t port = 0;
    std::atomic<bool> stopping{false};
    std::atomic<std::size_t> served{0};
    std::atomic<std::size_t> bounced{0};
    std::thread acceptor;
};

} // namespace

TEST(PeerLink, MuxedGridIsByteIdenticalDespiteOutOfOrderCompletions)
{
    const std::vector<JobSpec> specs = variedSpecs();
    const std::string expected = localJson(specs);

    ReplicaCluster fx(1, 1, "");
    fx.start();

    // Twelve jobs of wildly different lengths pipelined onto one
    // two-worker node: short jobs finish while long ones run, so the
    // responses arrive out of submit order and only rid matching can
    // put the grid back together in request order.
    std::vector<Endpoint> eps{fx.endpoint(0)};
    ClusterClient client(eps, 1);
    EXPECT_EQ(asJson(client.runJobs(specs)), expected);
}

TEST(PeerLink, OnePersistentConnectionCarriesTheWholeGrid)
{
    const std::vector<JobSpec> specs = variedSpecs();
    const std::string expected = localJson(specs);

    ProxiedNode node;
    std::vector<Endpoint> eps{node.front()};
    ClusterClient client(eps, 1);
    EXPECT_EQ(asJson(client.runJobs(specs)), expected);

    // The whole pipelined grid — every submit and every deferred
    // result — rode a single TCP connection. The pre-mux client paid
    // at least one connection per node per grid; the budget here is
    // exactly one, period.
    EXPECT_EQ(node.fault().connectionsSeen(), 1u);
}

TEST(PeerLink, DelayedLinkStillDeliversIntactResponses)
{
    std::vector<JobSpec> specs = variedSpecs();
    specs.resize(6);
    const std::string expected = localJson(specs);

    ProxiedNode node;
    node.fault().setMode(FaultProxy::Mode::Delay);
    node.fault().setDelayMs(100);

    std::vector<Endpoint> eps{node.front()};
    ClusterClient client(eps, 1, /*timeoutMs=*/10000);
    const auto begin = std::chrono::steady_clock::now();
    EXPECT_EQ(asJson(client.runJobs(specs)), expected);
    const auto elapsed = std::chrono::steady_clock::now() - begin;

    // The delay really sat on the link at least once, and slowness
    // alone never cost the persistent connection.
    EXPECT_GE(elapsed, std::chrono::milliseconds(100));
    EXPECT_EQ(node.fault().connectionsSeen(), 1u);
}

TEST(PeerLink, GarbageResponseFailsTheGridOverCleanly)
{
    const std::vector<JobSpec> specs = variedSpecs();
    const std::string expected = localJson(specs);

    // Ring identity = proxy addresses: faultnet sits on every link.
    ReplicaCluster fx(2, 2, "muxgarbage", /*peerTimeoutMs=*/1000);
    FaultProxy p0(fx.endpoint(0));
    FaultProxy p1(fx.endpoint(1));
    fx.start({p0.address(), p1.address()});

    std::vector<Endpoint> eps{p0.address(), p1.address()};
    {
        ClusterClient warm(eps, 2);
        EXPECT_EQ(asJson(warm.runJobs(specs)), expected);
    }
    fx.flushReplication();
    // The replica fan-out rode the multiplexed peer links.
    EXPECT_GT(fx.sumStat("peer_requests"), 0u);

    const HashRing ring = fx.node(0).ringView();
    const std::size_t dark =
        ring.ownerIndex(exp::jobKey(specs[0].toJob()));
    const std::size_t lit = dark == 0 ? 1 : 0;
    const std::uint64_t litSimsBefore =
        fx.nodeStats(lit).get("simulations").asU64(0);

    // Every new connection to the dark node now answers one line of
    // garbage and closes: its multiplexed link dies on the first
    // response, every pipelined in-flight request on it fails over.
    (dark == 0 ? p0 : p1).setMode(FaultProxy::Mode::Garbage);

    ClusterClient client(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(client.runJobs(specs)), expected);
    EXPECT_GT(client.failovers(), 0u);

    // Clean failover means replica records answered everything: the
    // lit node never re-simulated a single job.
    EXPECT_EQ(fx.nodeStats(lit).get("simulations").asU64(99),
              litSimsBefore);
}

TEST(PeerLink, MidFrameLinkDeathFailsOverAndHeals)
{
    const std::vector<JobSpec> specs = variedSpecs();
    const std::string expected = localJson(specs);

    ReplicaCluster fx(2, 2, "muxcut", /*peerTimeoutMs=*/1000);
    FaultProxy p0(fx.endpoint(0));
    FaultProxy p1(fx.endpoint(1));
    fx.start({p0.address(), p1.address()});

    std::vector<Endpoint> eps{p0.address(), p1.address()};
    {
        ClusterClient warm(eps, 2);
        EXPECT_EQ(asJson(warm.runJobs(specs)), expected);
    }
    fx.flushReplication();

    const HashRing ring = fx.node(0).ringView();
    const std::size_t dark =
        ring.ownerIndex(exp::jobKey(specs[0].toJob()));
    FaultProxy &darkProxy = dark == 0 ? p0 : p1;

    // Cut every future connection to the dark node 40 bytes into the
    // response stream — mid-frame, since any result line is far
    // longer. The link dies with a partial frame buffered; nothing
    // may leak across rids and every in-flight request fails over.
    darkProxy.setCloseAfterBytes(40);

    ClusterClient client(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(client.runJobs(specs)), expected);
    EXPECT_GT(client.failovers(), 0u);

    // Heal the link: a fresh client routes primaries again and the
    // reconnected link serves the dark node's own records.
    darkProxy.setCloseAfterBytes(0);
    ClusterClient healed(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(healed.runJobs(specs)), expected);
}

TEST(PeerLink, PoolCountsLinkDeathsAndReconnects)
{
    ProxiedNode node;
    LinkLoop loop({node.front()}, /*peerTimeoutMs=*/2000);
    loop.start();
    PeerPool &pool = loop.pool();

    // Healthy exchange first: the link comes up and confirms v4.
    JsonValue resp;
    std::string err;
    ASSERT_TRUE(pool.callSync(0, statsReq(), resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false));

    // Cut the live connection and poison the next one mid-frame.
    node.fault().setCloseAfterBytes(10);
    node.fault().severActive();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_FALSE(pool.callSync(0, statsReq(), resp, err));
    EXPECT_FALSE(err.empty());

    // Heal: the pool reconnects on its own and serves again.
    node.fault().setCloseAfterBytes(0);
    ASSERT_TRUE(pool.callSync(0, statsReq(), resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false));

    EXPECT_GE(pool.linkDeaths(), 1u);
    EXPECT_GE(pool.reconnects(), 1u);
    EXPECT_EQ(pool.legacyFallbacks(), 0u);
    loop.stop();
}

TEST(PeerLink, LegacyPeerTriggersOneShotFallback)
{
    FakeV3Peer peer;
    LinkLoop loop({peer.address()}, /*peerTimeoutMs=*/2000);
    loop.start();
    PeerPool &pool = loop.pool();

    // The first frame is pipelined optimistically as v4; the peer
    // bounces it rid-less with supported=3 and the pool replays the
    // request over a one-shot v3 connection — the caller just sees a
    // successful exchange.
    JsonValue resp;
    std::string err;
    ASSERT_TRUE(pool.callSync(0, statsReq(), resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false));
    EXPECT_TRUE(resp.has("stats"));
    EXPECT_GE(peer.v4Bounces(), 1u);
    EXPECT_EQ(peer.v3Serves(), 1u);
    EXPECT_GE(pool.legacyFallbacks(), 1u);

    // The downgrade is sticky: the next request goes straight to the
    // one-shot path without another v4 probe on that link.
    const std::size_t bouncesAfterDowngrade = peer.v4Bounces();
    ASSERT_TRUE(pool.callSync(0, statsReq(), resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false));
    EXPECT_EQ(peer.v3Serves(), 2u);
    EXPECT_EQ(peer.v4Bounces(), bouncesAfterDowngrade);
    loop.stop();
}
