/**
 * Failover tests: a replicated cluster keeps serving byte-identical
 * grids — with zero re-simulations for already-replicated keys —
 * when a node dies, whether the client is ring-aware (client-side
 * failover + read-repair) or legacy single-socket (server-side
 * holder walking); an unreplicated cluster still surfaces the
 * structured forward_failed error; and a blackholed (partitioned,
 * not dead) follower link only costs bounded timeouts and push
 * failures, never the grid.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "exp/engine.hh"
#include "exp/job.hh"
#include "serve/client.hh"
#include "serve/faultnet.hh"
#include "serve/replica_cluster.hh"
#include "sim/report.hh"

using namespace dcg;
using namespace dcg::serve;
using namespace dcg::serve::testing;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

std::vector<JobSpec>
smallGridSpecs()
{
    std::vector<JobSpec> specs;
    for (const char *bench : {"gzip", "mcf", "twolf", "art"}) {
        for (const char *scheme : {"base", "dcg"}) {
            JobSpec s;
            s.bench = bench;
            s.scheme = scheme;
            s.insts = kInsts;
            s.warmup = kWarmup;
            specs.push_back(s);
        }
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

std::string
localGridJson()
{
    exp::Engine local(2);
    std::vector<exp::Job> jobs;
    for (const JobSpec &s : smallGridSpecs())
        jobs.push_back(s.toJob());
    return asJson(local.run(jobs));
}

/**
 * The node to kill so a failover actually happens: the primary owner
 * of the first grid key. The ring hashes ephemeral "host:port" names,
 * so which node owns what differs per run — the victim must be looked
 * up, never hard-coded.
 */
std::size_t
victimNode(const HashRing &ring)
{
    return ring.ownerIndex(exp::jobKey(smallGridSpecs()[0].toJob()));
}

/** Sum of a stats counter over every node except @p dead. */
std::uint64_t
survivorStat(dcg::serve::testing::ReplicaCluster &fx,
             std::size_t dead, const std::string &name)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < fx.size(); ++i)
        if (i != dead && fx.alive(i))
            total += fx.nodeStats(i).get(name).asU64(0);
    return total;
}

} // namespace

TEST(Failover, RingAwareClientFailsOverWhenANodeDies)
{
    const std::string expected = localGridJson();
    ReplicaCluster fx(3, 2, "clientfo");
    fx.start();
    const std::size_t victim = victimNode(fx.node(0).ringView());

    std::vector<Endpoint> eps = fx.boundEndpoints();
    {
        ClusterClient warm(eps, 2);
        EXPECT_EQ(asJson(warm.runJobs(smallGridSpecs())), expected);
    }
    fx.flushReplication();
    const std::uint64_t liveSimsBefore =
        survivorStat(fx, victim, "simulations");

    fx.killNode(victim);

    ClusterClient client(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(client.runJobs(smallGridSpecs())), expected);
    EXPECT_GT(client.failovers(), 0u);

    // The survivors answered every re-routed key from their replica
    // records: not a single new simulation anywhere.
    EXPECT_EQ(survivorStat(fx, victim, "simulations"),
              liveSimsBefore);
}

TEST(Failover, LegacyClientIsServedThroughServerSideFailover)
{
    const std::string expected = localGridJson();
    ReplicaCluster fx(3, 2, "serverfo");
    fx.start();
    const std::size_t victim = victimNode(fx.node(0).ringView());
    const std::size_t entry = victim == 0 ? 1 : 0;

    {
        Client warm(fx.address(entry));
        EXPECT_EQ(asJson(warm.runJobs(smallGridSpecs())), expected);
    }
    fx.flushReplication();
    const std::uint64_t liveSimsBefore =
        survivorStat(fx, victim, "simulations");

    fx.killNode(victim);

    // A pre-replication, single-socket client through a live entry
    // node: the *server* walks each dead key's holders and serves
    // from a replica — the client never learns anything happened.
    Client legacy(fx.address(entry));
    EXPECT_EQ(asJson(legacy.runJobs(smallGridSpecs())), expected);
    EXPECT_EQ(legacy.failovers(), 0u);
    EXPECT_GT(fx.nodeStats(entry).get("failovers").asU64(0), 0u);

    EXPECT_EQ(survivorStat(fx, victim, "simulations"),
              liveSimsBefore);
}

TEST(Failover, UnreplicatedClusterSurfacesForwardFailed)
{
    ReplicaCluster fx(2, 1, "");
    fx.start();
    const HashRing &ring = fx.node(0).ringView();

    JobSpec spec = smallGridSpecs()[0];
    const std::size_t owner =
        ring.ownerIndex(exp::jobKey(spec.toJob()));
    const std::size_t entry = owner == 0 ? 1 : 0;

    fx.killNode(owner);

    // Protocol-level (the CLI client would rightly fatal): with one
    // copy per key there is nowhere to fail over to, and the job
    // fails with the structured forward_failed error.
    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(entry), err)) << err;
    JsonValue submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    submit.set("job", spec.toJson());
    stampVersion(submit, kProtocolVersion);
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(submit, resp, err)) << err;
    ASSERT_TRUE(resp.get("ok").asBool(false))
        << resp.get("detail").asString();

    JsonValue wait = JsonValue::object();
    wait.set("op", JsonValue::string("result"));
    wait.set("id", resp.get("id"));
    wait.set("wait", JsonValue::boolean(true));
    stampVersion(wait, kProtocolVersion);
    ASSERT_TRUE(conn.roundTrip(wait, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "forward_failed");
    EXPECT_EQ(resp.get("status").asString(), "failed");
}

TEST(Failover, SurvivingClientReadRepairsTheRevivedPrimary)
{
    const std::string expected = localGridJson();
    ReplicaCluster fx(3, 2, "readrepair");
    fx.start();
    // Take a full ring snapshot up front: the victim's own ringView
    // dies with it.
    const HashRing ring = fx.node(0).ringView();
    const std::size_t victim = victimNode(ring);

    std::vector<Endpoint> eps = fx.boundEndpoints();
    ClusterClient client(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(client.runJobs(smallGridSpecs())), expected);
    fx.flushReplication();

    // Lose the victim; the same client keeps working and learns (via
    // its per-key route state) which keys now live on followers.
    fx.killNode(victim);
    EXPECT_EQ(asJson(client.runJobs(smallGridSpecs())), expected);
    EXPECT_GT(client.failovers(), 0u);

    // The victim comes back empty. The client still routes its keys
    // to the followers — and pushes each served result back to the
    // primary it knows has been failed over: client-driven
    // read-repair refills the revived node without a simulation.
    fx.restartNode(victim, /*wipeStore=*/true);
    EXPECT_EQ(asJson(client.runJobs(smallGridSpecs())), expected);
    EXPECT_GT(client.readRepairs(), 0u);
    EXPECT_EQ(fx.nodeStats(victim).get("simulations").asU64(99), 0u);

    fx.flushReplication();
    ResultStore probe(fx.storeDir(victim));
    std::size_t repaired = 0;
    for (const JobSpec &s : smallGridSpecs()) {
        const std::string key = exp::jobKey(s.toJob());
        RunResult r;
        if (ring.ownerIndex(key) == victim && probe.get(key, r))
            ++repaired;
    }
    EXPECT_GT(repaired, 0u);
}

TEST(Failover, MidGridNodeLossStillYieldsAByteIdenticalGrid)
{
    const std::string expected = localGridJson();
    ReplicaCluster fx(3, 2, "midgrid");
    fx.start();

    // Cold cluster, node killed while the grid is in flight: however
    // the timing lands — jobs drained on the dying node, failed over
    // by the client, re-run on a follower — determinism means the
    // collected grid must be byte-identical. (No failover-count
    // assertion here: the race is real and either outcome is legal.)
    std::vector<Endpoint> eps = fx.boundEndpoints();
    ClusterClient client(eps, 2, /*timeoutMs=*/2000);
    std::string got;
    std::thread grid([&] {
        got = asJson(client.runJobs(smallGridSpecs()));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fx.killNode(0);
    grid.join();
    EXPECT_EQ(got, expected);
}

TEST(Failover, BlackholedFollowerCostsPushFailuresNotTheGrid)
{
    const std::string expected = localGridJson();
    // Ring identity = proxy addresses, so *every* link — client to
    // node and node to node — runs through faultnet.
    ReplicaCluster fx(2, 2, "bhole", /*peerTimeoutMs=*/300);
    FaultProxy p0(fx.endpoint(0));
    FaultProxy p1(fx.endpoint(1));
    fx.start({p0.address(), p1.address()});

    // Partition the node owning the first grid key (so at least one
    // submit must fail over): connections still reach its proxy — so
    // nothing fails fast — and then hang; only timeouts make
    // progress.
    const std::size_t dark = victimNode(fx.node(0).ringView());
    const std::size_t lit = dark == 0 ? 1 : 0;
    FaultProxy &darkProxy = dark == 0 ? p0 : p1;
    darkProxy.setMode(FaultProxy::Mode::Blackhole);

    std::vector<Endpoint> eps{p0.address(), p1.address()};
    ClusterClient client(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(client.runJobs(smallGridSpecs())), expected);
    EXPECT_GT(client.failovers(), 0u);

    fx.flushReplication();
    const JsonValue litStats = fx.nodeStats(lit);
    // The lit node absorbed the whole grid: its own keys plus every
    // failed-over key of the partitioned node, whose fan-out pushes
    // all timed out.
    EXPECT_EQ(litStats.get("simulations").asU64(0),
              smallGridSpecs().size());
    EXPECT_GT(litStats.get("replica_push_failures").asU64(0), 0u);
    EXPECT_GT(litStats.get("failovers").asU64(0), 0u);

    // Heal the partition: the dark node refills from the lit node's
    // records via fetch read-repair — still zero simulations there.
    darkProxy.setMode(FaultProxy::Mode::Pass);
    ClusterClient healed(eps, 2, /*timeoutMs=*/2000);
    EXPECT_EQ(asJson(healed.runJobs(smallGridSpecs())), expected);
    const JsonValue darkStats = fx.nodeStats(dark);
    EXPECT_EQ(darkStats.get("simulations").asU64(99), 0u);
    EXPECT_GT(darkStats.get("read_repairs").asU64(0), 0u);
}
