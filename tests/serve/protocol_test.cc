/**
 * Tests for the dcgserved wire protocol types: JobSpec/GridSpec JSON
 * round-trips, validation (reject, don't die), grid expansion, and the
 * bit-exact result embedding used by "result" responses.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/engine.hh"
#include "gating/registry.hh"
#include "serve/protocol.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::serve;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

JobSpec
sampleSpec()
{
    JobSpec s;
    s.bench = "mcf";
    s.scheme = "plb-ext";
    s.depth = 20;
    s.insts = kInsts;
    s.warmup = kWarmup;
    s.seed = 7;
    s.gateIq = true;
    s.storeDelay = true;
    s.roundRobin = true;
    return s;
}

} // namespace

TEST(Protocol, JobSpecJsonRoundTrip)
{
    const JobSpec s = sampleSpec();
    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(s.toJson(), back, err)) << err;
    EXPECT_EQ(back.bench, s.bench);
    EXPECT_EQ(back.scheme, s.scheme);
    EXPECT_EQ(back.depth, s.depth);
    EXPECT_EQ(back.insts, s.insts);
    EXPECT_EQ(back.warmup, s.warmup);
    EXPECT_EQ(back.seed, s.seed);
    EXPECT_EQ(back.gateIq, s.gateIq);
    EXPECT_EQ(back.storeDelay, s.storeDelay);
    EXPECT_EQ(back.roundRobin, s.roundRobin);

    // The round-tripped spec expands to the same cache key — the
    // property the whole remote-execution path rests on.
    EXPECT_EQ(exp::jobKey(s.toJob()), exp::jobKey(back.toJob()));
}

TEST(Protocol, JobSpecValidationRejectsWithoutDying)
{
    std::string err;
    JobSpec ok;
    EXPECT_TRUE(ok.validate(err));

    JobSpec badBench = ok;
    badBench.bench = "quake3";
    EXPECT_FALSE(badBench.validate(err));
    EXPECT_NE(err.find("quake3"), std::string::npos);

    JobSpec badScheme = ok;
    badScheme.scheme = "turbo";
    EXPECT_FALSE(badScheme.validate(err));
    EXPECT_NE(err.find("turbo"), std::string::npos);
}

TEST(Protocol, JobSpecToJobMatchesPresets)
{
    JobSpec s;
    s.bench = "gzip";
    s.scheme = "dcg";
    s.depth = 8;
    s.insts = kInsts;
    s.warmup = kWarmup;
    s.seed = 3;
    const exp::Job job = s.toJob();
    SimConfig expect = table1Config("dcg");
    expect.seed = 3;
    EXPECT_EQ(exp::jobKey(job),
              exp::jobKey(exp::makeJob(profileByName("gzip"), expect,
                                       kInsts, kWarmup)));

    // depth >= 20 switches to the deep-pipeline machine.
    s.depth = 20;
    SimConfig deep = deepPipelineConfig("dcg");
    deep.seed = 3;
    EXPECT_EQ(exp::jobKey(s.toJob()),
              exp::jobKey(exp::makeJob(profileByName("gzip"), deep,
                                       kInsts, kWarmup)));
}

TEST(Protocol, GridSpecExpansionAndDefaults)
{
    GridSpec g;
    g.insts = kInsts;
    g.warmup = kWarmup;
    std::string err;
    ASSERT_TRUE(g.validate(err)) << err;

    // Defaults: full benchmark set x {base, dcg}.
    const auto all = g.expand();
    EXPECT_EQ(all.size(), allSpecNames().size() * 2);

    g.benchmarks = {"gzip", "mcf"};
    g.schemes = {"base", "dcg", "plb-ext"};
    const auto some = g.expand();
    ASSERT_EQ(some.size(), 6u);
    EXPECT_EQ(some[0].bench, "gzip");
    EXPECT_EQ(some[0].scheme, "base");
    EXPECT_EQ(some[5].bench, "mcf");
    EXPECT_EQ(some[5].scheme, "plb-ext");
    for (const JobSpec &s : some) {
        EXPECT_EQ(s.insts, kInsts);
        EXPECT_EQ(s.warmup, kWarmup);
    }

    GridSpec bad = g;
    bad.schemes = {"warp"};
    EXPECT_FALSE(bad.validate(err));

    GridSpec back;
    ASSERT_TRUE(GridSpec::fromJson(g.toJson(), back, err)) << err;
    EXPECT_EQ(back.benchmarks, g.benchmarks);
    EXPECT_EQ(back.schemes, g.schemes);
    EXPECT_EQ(back.insts, g.insts);
}

TEST(Protocol, SchemeValidationTracksRegistry)
{
    // The wire protocol accepts exactly the registered schemes — a new
    // scheme file is network-reachable with no protocol change.
    for (const std::string &name : gating::schemeNames()) {
        JobSpec s;
        s.bench = "gzip";
        s.scheme = name;
        std::string err;
        EXPECT_TRUE(s.validate(err)) << name << ": " << err;
    }

    JobSpec bad;
    bad.bench = "gzip";
    bad.scheme = "DCG";  // case-sensitive, like the registry
    std::string err;
    EXPECT_FALSE(bad.validate(err));
    // The rejection names every valid scheme so users can self-serve.
    EXPECT_NE(err.find("unknown scheme 'DCG'"), std::string::npos);
    for (const std::string &name : gating::schemeNames())
        EXPECT_NE(err.find(name), std::string::npos) << err;

    bad.scheme = "";
    EXPECT_FALSE(bad.validate(err));
}

TEST(Protocol, ResultsSurviveJsonEmbeddingBitExactly)
{
    exp::Engine engine(1);
    JobSpec s;
    s.bench = "gzip";
    s.insts = kInsts;
    s.warmup = kWarmup;
    const RunResult r = engine.runOne(s.toJob());

    // Embed exactly as the server does, then recover exactly as the
    // client does, and compare canonical serialisations byte-for-byte.
    const JsonValue v = resultsToJson({r});
    std::vector<RunResult> back;
    std::string err;
    ASSERT_TRUE(resultsFromJson(v, back, err)) << err;
    ASSERT_EQ(back.size(), 1u);

    std::ostringstream a, b;
    writeResultsJson({r}, a);
    writeResultsJson({back.front()}, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Protocol, ResponseHelpers)
{
    const JsonValue ok = okResponse();
    EXPECT_TRUE(ok.get("ok").asBool());

    const JsonValue err = errorResponse("busy", "queue full");
    EXPECT_FALSE(err.get("ok").asBool(true));
    EXPECT_EQ(err.get("error").asString(), "busy");
    EXPECT_EQ(err.get("detail").asString(), "queue full");
}

TEST(Protocol, RequestVersionDefaultsToLegacyV1)
{
    std::string err;
    unsigned v = 0;
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("stats"));
    ASSERT_TRUE(requestVersion(req, v, err)) << err;
    EXPECT_EQ(v, 1u);

    req.set("version", JsonValue::integer(std::uint64_t{2}));
    ASSERT_TRUE(requestVersion(req, v, err)) << err;
    EXPECT_EQ(v, 2u);

    // A future version still parses; rejection is a separate,
    // structured step so the client learns the supported maximum.
    req.set("version", JsonValue::integer(std::uint64_t{7}));
    ASSERT_TRUE(requestVersion(req, v, err));
    EXPECT_EQ(v, 7u);
}

TEST(Protocol, RequestVersionRejectsGarbage)
{
    std::string err;
    unsigned v = 0;
    JsonValue req = JsonValue::object();
    req.set("version", JsonValue::string("two"));
    EXPECT_FALSE(requestVersion(req, v, err));
    EXPECT_FALSE(err.empty());

    req.set("version", JsonValue::integer(std::int64_t{0}));
    EXPECT_FALSE(requestVersion(req, v, err));
    req.set("version", JsonValue::integer(std::int64_t{-3}));
    EXPECT_FALSE(requestVersion(req, v, err));
}

TEST(Protocol, VersionedEnvelopeHelpers)
{
    JsonValue resp = okResponse();
    stampVersion(resp, 2);
    EXPECT_EQ(resp.get("version").asU64(0), 2u);
    stampVersion(resp, 1);  // restamp replaces
    EXPECT_EQ(resp.get("version").asU64(0), 1u);

    const JsonValue rej = unsupportedVersionResponse(9);
    EXPECT_FALSE(rej.get("ok").asBool(true));
    EXPECT_EQ(rej.get("error").asString(), "unsupported_version");
    EXPECT_EQ(rej.get("supported").asU64(0), kProtocolVersion);

    const JsonValue no = notOwnerResponse("10.0.0.2:7878");
    EXPECT_FALSE(no.get("ok").asBool(true));
    EXPECT_EQ(no.get("error").asString(), "not_owner");
    EXPECT_EQ(no.get("redirect").asString(), "10.0.0.2:7878");
}

TEST(Protocol, ReplicateRequestCarriesTheExactResultBytes)
{
    exp::Engine engine(1);
    const JobSpec spec = sampleSpec();
    const RunResult r = engine.run({spec.toJob()})[0];
    const std::string key = exp::jobKey(spec.toJob());

    const JsonValue req = replicateRequest(key, r);
    EXPECT_EQ(req.get("op").asString(), "replicate");
    EXPECT_EQ(req.get("key").asString(), key);
    EXPECT_EQ(req.get("version").asU64(0), kProtocolVersion);

    // The payload is the canonical one-result array, token-for-token
    // — what makes a replica record byte-identical to the original.
    std::vector<RunResult> one{r};
    EXPECT_EQ(req.get("result").dump(), resultsToJson(one).dump());
    std::vector<RunResult> back;
    std::string err;
    ASSERT_TRUE(resultsFromJson(req.get("result"), back, err)) << err;
    ASSERT_EQ(back.size(), 1u);
    std::ostringstream expect, got;
    writeResultsJson(one, expect);
    writeResultsJson(back, got);
    EXPECT_EQ(got.str(), expect.str());
}

TEST(Protocol, FetchRequestNamesTheKeyUnderV3)
{
    const JsonValue req = fetchRequest("some-content-key");
    EXPECT_EQ(req.get("op").asString(), "fetch");
    EXPECT_EQ(req.get("key").asString(), "some-content-key");
    EXPECT_EQ(req.get("version").asU64(0), kProtocolVersion);
    // Protocol v3 is the replication protocol: these ops must never
    // be emitted with an older (or missing) version stamp.
    EXPECT_GE(kProtocolVersion, 3u);
}
