/**
 * End-to-end tests for the sharded dcgserved cluster: byte-identical
 * grids through any entry node, records living on exactly the shard
 * the ring designates, transparent forwarding for legacy unversioned
 * clients, not_owner redirects for ring-aware ones, and the versioned
 * envelope (unsupported_version rejection).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "exp/engine.hh"
#include "exp/job.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::serve;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

std::string
freshDir(const std::string &tag)
{
    namespace fs = std::filesystem;
    const fs::path p = fs::temp_directory_path() /
        ("dcg_cluster_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(p);
    return p.string();
}

std::vector<JobSpec>
smallGridSpecs()
{
    std::vector<JobSpec> specs;
    for (const char *bench : {"gzip", "mcf", "twolf", "art"}) {
        for (const char *scheme : {"base", "dcg"}) {
            JobSpec s;
            s.bench = bench;
            s.scheme = scheme;
            s.insts = kInsts;
            s.warmup = kWarmup;
            specs.push_back(s);
        }
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

/**
 * A live N-node cluster on ephemeral ports: every Server is bound
 * first (so the real ports are known), then they all learn the full
 * ring via configureCluster(), then the event loops start.
 */
class ClusterFixture
{
  public:
    explicit ClusterFixture(std::size_t n,
                            const std::string &storeTag = "")
    {
        for (std::size_t i = 0; i < n; ++i) {
            ServerConfig cfg;
            cfg.host = "127.0.0.1";
            cfg.port = 0;
            cfg.workers = 2;
            if (!storeTag.empty()) {
                storeDirs.push_back(
                    freshDir(storeTag + std::to_string(i)));
                cfg.storeDir = storeDirs.back();
            }
            servers.push_back(std::make_unique<Server>(cfg));
        }
        std::vector<Endpoint> ring;
        for (const auto &s : servers)
            ring.push_back(Endpoint{"127.0.0.1", s->port()});
        for (std::size_t i = 0; i < n; ++i)
            servers[i]->configureCluster(ring, ring[i].str());
        for (const auto &s : servers)
            threads.emplace_back([&srv = *s] { srv.run(); });
    }

    ~ClusterFixture()
    {
        for (const auto &s : servers)
            s->requestStop();
        for (std::thread &t : threads)
            t.join();
        namespace fs = std::filesystem;
        for (const std::string &d : storeDirs)
            fs::remove_all(d);
    }

    std::string address(std::size_t i) const
    {
        return "127.0.0.1:" + std::to_string(servers[i]->port());
    }

    Endpoint endpoint(std::size_t i) const
    {
        return Endpoint{"127.0.0.1", servers[i]->port()};
    }

    Server &node(std::size_t i) { return *servers[i]; }
    std::size_t size() const { return servers.size(); }
    const std::string &storeDir(std::size_t i) const
    {
        return storeDirs[i];
    }

  private:
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<std::thread> threads;
    std::vector<std::string> storeDirs;
};

} // namespace

TEST(Cluster, GridIsByteIdenticalThroughEitherEntryNode)
{
    const auto specs = smallGridSpecs();

    exp::Engine local(2);
    std::vector<exp::Job> jobs;
    for (const JobSpec &s : specs)
        jobs.push_back(s.toJob());
    const std::string expected = asJson(local.run(jobs));

    ClusterFixture fx(2);

    // Legacy single-endpoint client against node 0: every job the
    // ring assigns to node 1 is transparently forwarded.
    Client viaA(fx.address(0));
    EXPECT_EQ(asJson(viaA.runJobs(specs)), expected);

    // Same grid through the other entry node.
    Client viaB(fx.address(1));
    EXPECT_EQ(asJson(viaB.runJobs(specs)), expected);

    // Ring-aware fan-out over both nodes.
    std::vector<Endpoint> eps{fx.endpoint(0), fx.endpoint(1)};
    ClusterClient fanout(eps);
    EXPECT_EQ(asJson(fanout.runJobs(specs)), expected);
}

TEST(Cluster, EachResultIsStoredOnExactlyTheOwningShard)
{
    const auto specs = smallGridSpecs();
    std::vector<std::string> keys;
    for (const JobSpec &s : specs)
        keys.push_back(exp::jobKey(s.toJob()));

    namespace fs = std::filesystem;
    ClusterFixture fx(2, "shard");
    Client client(fx.address(0));  // everything enters via node 0
    client.runJobs(specs);

    const HashRing &ring = fx.node(0).ringView();
    ASSERT_EQ(ring.nodeCount(), 2u);

    // The grid must actually exercise forwarding, or this test proves
    // nothing about shard placement.
    std::size_t remoteOwned = 0;
    for (const std::string &key : keys)
        if (ring.ownerIndex(key) != 0)
            ++remoteOwned;
    EXPECT_GT(remoteOwned, 0u);
    EXPECT_LT(remoteOwned, keys.size());

    // Probe on-disk placement through throwaway store handles rooted
    // at the same directories (all writes finished with runJobs): a
    // record exists on the owner's shard and nowhere else.
    ResultStore probe0(fx.storeDir(0));
    ResultStore probe1(fx.storeDir(1));
    for (const std::string &key : keys) {
        const bool owned0 = ring.ownerIndex(key) == 0;
        EXPECT_EQ(fs::exists(probe0.recordPath(key)), owned0)
            << key;
        EXPECT_EQ(fs::exists(probe1.recordPath(key)), !owned0)
            << key;
    }
}

TEST(Cluster, UnversionedLegacyRequestIsForwardedAndAnsweredAsV1)
{
    ClusterFixture fx(2);

    // Find a spec owned by node 1, then submit it raw — no "version"
    // member — through node 0, exactly like a pre-cluster client.
    const HashRing &ring = fx.node(0).ringView();
    JobSpec spec;
    spec.insts = kInsts;
    spec.warmup = kWarmup;
    // Search the full benchmark set: the ring hashes ephemeral ports,
    // so a short candidate list occasionally lands entirely on node 0.
    bool found = false;
    for (const std::string &bench : allSpecNames()) {
        spec.bench = bench;
        if (ring.ownerIndex(exp::jobKey(spec.toJob())) == 1) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no test bench hashes to node 1";

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(0), err)) << err;

    JsonValue submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    submit.set("job", spec.toJson());
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(submit, resp, err)) << err;
    ASSERT_TRUE(resp.get("ok").asBool(false))
        << resp.get("detail").asString();
    EXPECT_EQ(resp.get("version").asU64(0), 1u);

    JsonValue wait = JsonValue::object();
    wait.set("op", JsonValue::string("result"));
    wait.set("id", resp.get("id"));
    wait.set("wait", JsonValue::boolean(true));
    ASSERT_TRUE(conn.roundTrip(wait, resp, err)) << err;
    ASSERT_TRUE(resp.get("ok").asBool(false))
        << resp.get("error").asString();
    EXPECT_EQ(resp.get("version").asU64(0), 1u);
    EXPECT_EQ(resp.get("status").asString(), "done");

    std::vector<RunResult> results;
    ASSERT_TRUE(resultsFromJson(resp.get("result"), results, err))
        << err;
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].benchmark, spec.bench);
}

TEST(Cluster, RedirectRequestYieldsNotOwnerWithOwnerAddress)
{
    ClusterFixture fx(2);
    const HashRing &ring = fx.node(0).ringView();

    JobSpec spec;
    spec.insts = kInsts;
    spec.warmup = kWarmup;
    // Full benchmark set for the same reason as the legacy test above.
    bool found = false;
    for (const std::string &bench : allSpecNames()) {
        spec.bench = bench;
        if (ring.ownerIndex(exp::jobKey(spec.toJob())) == 1) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(0), err)) << err;

    JsonValue submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    submit.set("job", spec.toJson());
    submit.set("redirect", JsonValue::boolean(true));
    stampVersion(submit, kProtocolVersion);
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(submit, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "not_owner");
    EXPECT_EQ(resp.get("redirect").asString(), fx.address(1));
    EXPECT_EQ(resp.get("version").asU64(0), kProtocolVersion);

    // A forwarded submit for a foreign key is likewise bounced, never
    // re-forwarded — the loop-prevention invariant.
    submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    submit.set("job", spec.toJson());
    submit.set("forwarded", JsonValue::boolean(true));
    stampVersion(submit, kProtocolVersion);
    ASSERT_TRUE(conn.roundTrip(submit, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "not_owner");
}

TEST(Cluster, FutureProtocolVersionIsRejectedStructurally)
{
    ClusterFixture fx(1);
    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(0), err)) << err;

    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("stats"));
    req.set("version", JsonValue::integer(std::uint64_t{99}));
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(req, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "unsupported_version");
    EXPECT_EQ(resp.get("supported").asU64(0), kProtocolVersion);

    // A garbage version is a bad_request, not a crash.
    req.set("version", JsonValue::string("two"));
    ASSERT_TRUE(conn.roundTrip(req, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "bad_request");
}

TEST(Cluster, StatsAggregateAcrossNodes)
{
    ClusterFixture fx(2);
    std::vector<Endpoint> eps{fx.endpoint(0), fx.endpoint(1)};
    ClusterClient client(eps);
    client.runJobs(smallGridSpecs());

    const JsonValue stats = client.stats();
    EXPECT_EQ(stats.get("nodes_total").asU64(0), 2u);
    EXPECT_TRUE(stats.has("nodes"));
    // Fan-out means neither node simulated the whole grid, but the
    // cluster as a whole simulated every job exactly once.
    EXPECT_EQ(stats.get("simulations").asU64(0),
              smallGridSpecs().size());
    const JsonValue &perNode = stats.get("nodes");
    EXPECT_TRUE(perNode.has(fx.address(0)));
    EXPECT_TRUE(perNode.has(fx.address(1)));
}
