/**
 * Elastic-membership tests (protocol v5): live join/leave on the
 * versioned ring.
 *
 *  - a join moves exactly the arcs the ring remaps (~1/N) and nothing
 *    else, and the moved records are served without re-simulation;
 *  - a join during an in-flight grid loses no request and stays
 *    byte-identical to a local engine run;
 *  - leaving a replica holder keeps every key answerable;
 *  - a double join is rejected with a structured already_member error;
 *  - epoch disagreement resolves to the higher epoch.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/engine.hh"
#include "exp/job.hh"
#include "serve/client.hh"
#include "serve/ring.hh"
#include "sim/report.hh"
#include "serve/replica_cluster.hh"

using namespace dcg;
using namespace dcg::serve;
using dcg::serve::testing::ReplicaCluster;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

std::vector<JobSpec>
gridSpecs()
{
    std::vector<JobSpec> specs;
    for (const char *bench : {"gzip", "mcf", "twolf", "art"}) {
        for (const char *scheme : {"base", "dcg"}) {
            JobSpec s;
            s.bench = bench;
            s.scheme = scheme;
            s.insts = kInsts;
            s.warmup = kWarmup;
            specs.push_back(s);
        }
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

std::vector<RunResult>
runLocally(const std::vector<JobSpec> &specs)
{
    exp::Engine engine(2);
    std::vector<exp::Job> jobs;
    for (const JobSpec &s : specs)
        jobs.push_back(s.toJob());
    return engine.run(jobs);
}

std::vector<RunResult>
runVia(const std::vector<Endpoint> &eps,
       const std::vector<JobSpec> &specs, unsigned replicas = 1)
{
    ClusterClient client(eps, replicas);
    client.connect();
    return client.runJobs(specs);
}

} // namespace

TEST(Membership, JoinMovesOnlyRemappedArcs)
{
    ReplicaCluster cluster(2, 1, "join_arcs");
    cluster.start();
    const std::vector<JobSpec> specs = gridSpecs();

    const std::string viaOld =
        asJson(runVia(cluster.boundEndpoints(), specs));
    const std::uint64_t simsBefore = cluster.sumStat("simulations");
    EXPECT_EQ(simsBefore, specs.size());

    const std::size_t j = cluster.addStandaloneNode("join_arcs_new");

    // The ring predicts exactly which arcs a third member remaps.
    const HashRing oldRing(
        {cluster.address(0), cluster.address(1)});
    const HashRing newRing({cluster.address(0), cluster.address(1),
                            cluster.address(j)});
    std::uint64_t expectedMoves = 0;
    for (const JobSpec &s : specs) {
        const std::string key = exp::jobKey(s.toJob());
        if (oldRing.owner(key) != newRing.owner(key))
            ++expectedMoves;
    }
    // Sanity on the scenario itself: something moves, most keys stay.
    ASSERT_GT(expectedMoves, 0u);
    ASSERT_LT(expectedMoves, specs.size());

    const JsonValue joined =
        cluster.adminOp(0, "join", cluster.address(j));
    ASSERT_TRUE(joined.get("ok").asBool(false)) << joined.dump();
    EXPECT_EQ(joined.get("epoch").asU64(0), 1u);

    // Exactly the remapped arcs moved — a join must not reshuffle the
    // keys whose owner did not change.
    EXPECT_EQ(cluster.sumStat("rebalance_arcs_moved"), expectedMoves);
    EXPECT_GT(cluster.sumStat("rebalance_bytes"), 0u);

    // The grown cluster serves the same grid byte-identically with
    // zero re-simulations: every moved record was really handed off.
    std::vector<Endpoint> eps = cluster.boundEndpoints();
    const std::string viaNew = asJson(runVia(eps, specs));
    EXPECT_EQ(viaOld, viaNew);
    EXPECT_EQ(cluster.sumStat("simulations"), simsBefore);
}

TEST(Membership, JoinDuringInflightGrid)
{
    ReplicaCluster cluster(2, 1, "join_flight");
    cluster.start();
    const std::vector<JobSpec> specs = gridSpecs();
    const std::string local = asJson(runLocally(specs));

    // Fire the grid and the join concurrently. The client only knows
    // the ORIGINAL two nodes, so every request races the epoch change
    // through them: old owners must keep serving moved arcs
    // (dual-epoch routing) until the handoff lands, and the results
    // must stay byte-identical to a local run.
    const std::vector<Endpoint> oldEps = {cluster.endpoint(0),
                                          cluster.endpoint(1)};
    const std::size_t j = cluster.addStandaloneNode("join_flight_new");
    std::string viaCluster;
    std::thread grid([&] { viaCluster = asJson(runVia(oldEps, specs)); });
    const JsonValue joined =
        cluster.adminOp(0, "join", cluster.address(j));
    grid.join();

    ASSERT_TRUE(joined.get("ok").asBool(false)) << joined.dump();
    EXPECT_EQ(viaCluster, local);
    const std::uint64_t simsAfter = cluster.sumStat("simulations");
    EXPECT_EQ(simsAfter, specs.size());

    // A rerun through the grown ring re-serves everything from the
    // stores: the join lost no work.
    const std::string rerun =
        asJson(runVia(cluster.boundEndpoints(), specs));
    EXPECT_EQ(rerun, local);
    EXPECT_EQ(cluster.sumStat("simulations"), simsAfter);
}

TEST(Membership, LeaveReplicaHolderKeepsEveryKeyAnswerable)
{
    ReplicaCluster cluster(3, 2, "leave_replica");
    cluster.start();
    const std::vector<JobSpec> specs = gridSpecs();

    const std::string before =
        asJson(runVia(cluster.boundEndpoints(), specs, 2));
    cluster.flushReplication();
    const std::uint64_t simsBefore = cluster.sumStat("simulations");

    const JsonValue left =
        cluster.adminOp(0, "leave", cluster.address(2));
    ASSERT_TRUE(left.get("ok").asBool(false)) << left.dump();
    EXPECT_EQ(left.get("epoch").asU64(0), 1u);

    // Every key the leaver held (as primary or replica) must still be
    // served by the two survivors without re-simulating.
    const std::string after = asJson(
        runVia({cluster.endpoint(0), cluster.endpoint(1)}, specs, 2));
    EXPECT_EQ(before, after);
    EXPECT_EQ(cluster.nodeStats(0).get("simulations").asU64(0) +
                  cluster.nodeStats(1).get("simulations").asU64(0) +
                  cluster.nodeStats(2).get("simulations").asU64(0),
              simsBefore);
}

TEST(Membership, DoubleJoinRejectedStructured)
{
    ReplicaCluster cluster(2, 1, "double_join");
    cluster.start();

    // A node already on the ring cannot join again.
    const JsonValue dup =
        cluster.adminOp(0, "join", cluster.address(1));
    EXPECT_FALSE(dup.get("ok").asBool(true));
    EXPECT_EQ(dup.get("error").asString(), "already_member");
    EXPECT_NE(dup.get("detail").asString().find(cluster.address(1)),
              std::string::npos);

    // Joining a node twice: the first succeeds, the second is the
    // same structured rejection.
    const std::size_t j = cluster.addStandaloneNode();
    const JsonValue first =
        cluster.adminOp(0, "join", cluster.address(j));
    ASSERT_TRUE(first.get("ok").asBool(false)) << first.dump();
    const JsonValue second =
        cluster.adminOp(1, "join", cluster.address(j));
    EXPECT_FALSE(second.get("ok").asBool(true));
    EXPECT_EQ(second.get("error").asString(), "already_member");
}

TEST(Membership, EpochMismatchResolvesToHigher)
{
    ReplicaCluster cluster(2, 1, "epoch_mismatch");
    cluster.start();
    const std::size_t j = cluster.addStandaloneNode();
    const JsonValue joined =
        cluster.adminOp(0, "join", cluster.address(j));
    ASSERT_TRUE(joined.get("ok").asBool(false)) << joined.dump();
    const std::uint64_t cur = joined.get("epoch").asU64(0);
    ASSERT_GE(cur, 1u);

    Connection conn;
    std::string err;
    JsonValue resp;
    ASSERT_TRUE(conn.open(cluster.endpoint(0), err)) << err;

    // Re-announcing the installed epoch is idempotent.
    std::vector<std::string> members;
    for (const JsonValue &m : joined.get("members").items())
        members.push_back(m.asString());
    ASSERT_EQ(members.size(), 3u);
    const JsonValue again = epochRequest(cur, members, 0, {}, 1);
    ASSERT_TRUE(conn.roundTrip(again, resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false)) << resp.dump();

    // A higher epoch announcement wins: the node installs it and the
    // ring surface reflects the new membership.
    const std::uint64_t higher = cur + 5;
    const JsonValue announce = epochRequest(
        higher, {cluster.address(0), cluster.address(1)}, cur,
        {cluster.address(0), cluster.address(1), cluster.address(j)},
        1);
    ASSERT_TRUE(conn.roundTrip(announce, resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false)) << resp.dump();
    EXPECT_EQ(resp.get("epoch").asU64(0), higher);

    const JsonValue ringResp = cluster.adminOp(0, "ring");
    ASSERT_TRUE(ringResp.get("ok").asBool(false)) << ringResp.dump();
    EXPECT_EQ(ringResp.get("epoch").asU64(0), higher);
    EXPECT_EQ(ringResp.get("members").items().size(), 2u);

    // And a now-stale announcement bounces with the installed epoch.
    const JsonValue lower = epochRequest(
        higher - 1, {cluster.address(0)}, 0, {}, 1);
    ASSERT_TRUE(conn.roundTrip(lower, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "stale_epoch");
    EXPECT_EQ(resp.get("epoch").asU64(0), higher);
    EXPECT_EQ(resp.get("members").items().size(), 2u);
}
