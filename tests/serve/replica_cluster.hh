/**
 * @file
 * ReplicaCluster: the shared in-process cluster fixture for the
 * replication and failover suites.
 *
 * Extends the pattern of cluster_test.cc's fixture with the three
 * capabilities fault-injection tests need:
 *
 *  - replication knobs (replicas / peerTimeoutMs) on every node;
 *  - a two-phase start, so the canonical ring can be built on
 *    addresses *other* than the bind addresses — in practice the
 *    faultnet proxy addresses, which puts a FaultProxy on every
 *    client-to-node and node-to-node link;
 *  - node lifecycle: killNode() stops one node (its port stays
 *    reserved in the fixture), restartNode() brings it back on the
 *    SAME port (optionally with a wiped store) so the rest of the
 *    cluster — whose ring still names that address — reconnects to
 *    the reincarnation transparently.
 *
 * Test-support code: lives in tests/, never linked into the tools.
 */

#ifndef DCG_TESTS_SERVE_REPLICA_CLUSTER_HH
#define DCG_TESTS_SERVE_REPLICA_CLUSTER_HH

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/log.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace dcg::serve::testing {

inline std::string
freshStoreDir(const std::string &tag)
{
    namespace fs = std::filesystem;
    const fs::path p = fs::temp_directory_path() /
        ("dcg_replica_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(p);
    return p.string();
}

class ReplicaCluster
{
  public:
    /**
     * Bind @p n nodes on ephemeral ports (no event loops yet).
     * Empty @p storeTag = no persistent stores (only valid with
     * replicas == 1; the server refuses to replicate storeless).
     */
    ReplicaCluster(std::size_t n, unsigned replicas,
                   const std::string &storeTag,
                   unsigned peerTimeoutMs = 0)
        : replicaCount(replicas), peerTimeout(peerTimeoutMs)
    {
        for (std::size_t i = 0; i < n; ++i) {
            ServerConfig cfg = baseConfig(i, storeTag);
            servers.push_back(std::make_unique<Server>(cfg));
            ports.push_back(servers.back()->port());
            threads.emplace_back();  // filled by start()
        }
    }

    ~ReplicaCluster()
    {
        for (std::size_t i = 0; i < servers.size(); ++i)
            if (servers[i])
                killNode(i);
        namespace fs = std::filesystem;
        for (const std::string &d : storeDirs)
            if (!d.empty())
                fs::remove_all(d);
    }

    /** Configure the ring on the bound addresses and start all. */
    void start() { start(boundEndpoints()); }

    /**
     * Configure the ring on @p ringAddrs (index-aligned with the
     * nodes; typically faultnet proxy addresses) and start all.
     */
    void start(const std::vector<Endpoint> &ringAddrs)
    {
        ring = ringAddrs;
        for (std::size_t i = 0; i < servers.size(); ++i)
            launch(i);
    }

    /** The address every node actually listens on. */
    std::vector<Endpoint> boundEndpoints() const
    {
        std::vector<Endpoint> eps;
        for (std::uint16_t p : ports)
            eps.push_back(Endpoint{"127.0.0.1", p});
        return eps;
    }

    /** Node @p i's canonical ring identity (proxy-aware). */
    Endpoint ringEndpoint(std::size_t i) const { return ring[i]; }
    std::string address(std::size_t i) const
    {
        return "127.0.0.1:" + std::to_string(ports[i]);
    }
    Endpoint endpoint(std::size_t i) const
    {
        return Endpoint{"127.0.0.1", ports[i]};
    }

    Server &node(std::size_t i) { return *servers[i]; }
    bool alive(std::size_t i) const { return servers[i] != nullptr; }
    std::size_t size() const { return servers.size(); }
    const std::string &storeDir(std::size_t i) const
    {
        return storeDirs[i];
    }

    /** Drain every node's pending replica fan-out pushes. */
    void flushReplication()
    {
        for (const auto &s : servers)
            if (s && s->replication())
                s->replication()->flush();
    }

    /**
     * Take node @p i down: stop its event loop and destroy the
     * Server. Its port and store directory survive for a restart;
     * peers connecting to the address now fail fast.
     */
    void killNode(std::size_t i)
    {
        servers[i]->requestStop();
        if (threads[i].joinable())
            threads[i].join();
        servers[i].reset();
    }

    /**
     * Bring node @p i back on its original port — and, with
     * @p wipeStore, as a cold process with an empty disk, the
     * "replaced machine" a replicated cluster must absorb.
     */
    void restartNode(std::size_t i, bool wipeStore = false)
    {
        namespace fs = std::filesystem;
        if (wipeStore && !storeDirs[i].empty())
            fs::remove_all(storeDirs[i]);
        ServerConfig cfg = baseConfig(i, "");
        cfg.storeDir = storeDirs[i];
        cfg.port = ports[i];  // SO_REUSEADDR makes the rebind stick
        servers[i] = std::make_unique<Server>(cfg);
        launch(i);
    }

    /**
     * Bind and start one NEW standalone node — its own epoch-0 ring
     * of itself, the kind of process a live `join` turns into a
     * member. Returns its index. Empty @p storeTag = no store.
     */
    std::size_t addStandaloneNode(const std::string &storeTag = "")
    {
        const std::size_t i = servers.size();
        ServerConfig cfg = baseConfig(i, storeTag);
        servers.push_back(std::make_unique<Server>(cfg));
        ports.push_back(servers.back()->port());
        ring.push_back(Endpoint{"127.0.0.1", ports.back()});
        threads.emplace_back([&srv = *servers.back()] { srv.run(); });
        return i;
    }

    /**
     * One raw admin exchange with node @p i on the current protocol
     * version; @p nodeArg rides as the "node" field when non-empty.
     * Returns the parsed response — rejections included, for tests
     * that assert on structured errors.
     */
    JsonValue adminOp(std::size_t i, const std::string &op,
                      const std::string &nodeArg = "")
    {
        Connection conn;
        std::string err;
        if (!conn.open(endpoint(i), err))
            fatal("adminOp: ", err);
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string(op));
        if (!nodeArg.empty())
            req.set("node", JsonValue::string(nodeArg));
        stampVersion(req, kProtocolVersion);
        JsonValue resp;
        if (!conn.roundTrip(req, resp, err))
            fatal("adminOp: ", err);
        return resp;
    }

    /** One node's raw stats object (op:"stats" over the wire). */
    JsonValue nodeStats(std::size_t i)
    {
        Connection conn;
        std::string err;
        if (!conn.open(endpoint(i), err))
            fatal("nodeStats: ", err);
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("stats"));
        JsonValue resp;
        if (!conn.roundTrip(req, resp, err))
            fatal("nodeStats: ", err);
        return resp.get("stats");
    }

    /** Sum of a stats counter over every *live* node. */
    std::uint64_t sumStat(const std::string &name)
    {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < servers.size(); ++i)
            if (servers[i])
                total += nodeStats(i).get(name).asU64(0);
        return total;
    }

  private:
    ServerConfig baseConfig(std::size_t i, const std::string &storeTag)
    {
        ServerConfig cfg;
        cfg.host = "127.0.0.1";
        cfg.port = 0;
        cfg.workers = 2;
        cfg.replicas = replicaCount;
        cfg.peerTimeoutMs = peerTimeout;
        if (!storeTag.empty()) {
            if (storeDirs.size() <= i)
                storeDirs.resize(i + 1);
            storeDirs[i] =
                freshStoreDir(storeTag + std::to_string(i));
            cfg.storeDir = storeDirs[i];
        } else if (storeDirs.size() <= i) {
            storeDirs.resize(i + 1);
        }
        return cfg;
    }

    void launch(std::size_t i)
    {
        servers[i]->configureCluster(ring, ring[i].str());
        threads[i] = std::thread([&srv = *servers[i]] { srv.run(); });
    }

    unsigned replicaCount;
    unsigned peerTimeout;
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<std::thread> threads;
    std::vector<std::uint16_t> ports;
    std::vector<std::string> storeDirs;
    std::vector<Endpoint> ring;  ///< canonical identities, by node
};

} // namespace dcg::serve::testing

#endif // DCG_TESTS_SERVE_REPLICA_CLUSTER_HH
