#include "serve/faultnet.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.hh"

namespace dcg::serve::testing {

namespace {

int
dialTarget(const Endpoint &ep)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    return fd;
}

/** Forward @p n bytes; false when the destination is gone. */
bool
sendAll(int fd, const char *data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w =
            send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

FaultProxy::FaultProxy(const Endpoint &targetEp)
    : target(targetEp)
{
    listenFd = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal("faultnet: cannot create socket: ",
              std::strerror(errno));
    const int one = 1;
    if (setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0)
        warn("faultnet: setsockopt(SO_REUSEADDR) failed: ",
             std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    if (inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
        bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(listenFd, 64) != 0)
        fatal("faultnet: cannot bind/listen: ", std::strerror(errno));
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                    &blen) != 0)
        fatal("faultnet: getsockname failed: ", std::strerror(errno));
    port = ntohs(bound.sin_port);
    acceptor = std::thread([this] { acceptLoop(); });
}

FaultProxy::~FaultProxy()
{
    stopping.store(true);
    severActive();
    // Wake the acceptor if it's blocked; its poll() times out within
    // 100ms anyway and re-checks the stop flag. The fd is closed (and
    // the member rewritten) only after the join, so the acceptor
    // never touches a stale or reused descriptor.
    if (listenFd >= 0)
        shutdown(listenFd, SHUT_RDWR);
    if (acceptor.joinable())
        acceptor.join();
    if (listenFd >= 0) {
        close(listenFd);
        listenFd = -1;
    }
    std::lock_guard<std::mutex> lk(threadsMutex);
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
}

Endpoint
FaultProxy::address() const
{
    return Endpoint{"127.0.0.1", port};
}

void
FaultProxy::severActive()
{
    // Relay loops poll with a short timeout and compare epochs; a
    // bumped epoch makes every active relay close both ends.
    severEpoch.fetch_add(1);
}

void
FaultProxy::acceptLoop()
{
    while (!stopping.load()) {
        pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        const int pr = poll(&pfd, 1, 100);
        if (pr <= 0)
            continue;
        const int cfd = accept(listenFd, nullptr, nullptr);
        if (cfd < 0)
            continue;
        accepted.fetch_add(1);
        const Mode m = mode.load();
        std::lock_guard<std::mutex> lk(threadsMutex);
        threads.emplace_back(
            [this, cfd, m] { serve(cfd, m); });
    }
}

void
FaultProxy::serve(int clientFd, Mode m)
{
    if (m == Mode::CloseOnAccept) {
        close(clientFd);
        return;
    }
    if (m == Mode::Blackhole) {
        // Swallow whatever arrives and never answer; leave only when
        // the client hangs up, the proxy stops, or a sever() hits.
        const std::uint64_t epoch = severEpoch.load();
        char buf[4096];
        while (!stopping.load() && severEpoch.load() == epoch) {
            pollfd pfd{};
            pfd.fd = clientFd;
            pfd.events = POLLIN;
            if (poll(&pfd, 1, 50) <= 0)
                continue;
            const ssize_t n = recv(clientFd, buf, sizeof(buf), 0);
            if (n == 0 || (n < 0 && errno != EINTR))
                break;
        }
        close(clientFd);
        return;
    }
    if (m == Mode::Garbage) {
        // Wait for the first request bytes, answer nonsense, close.
        char buf[4096];
        const ssize_t n = recv(clientFd, buf, sizeof(buf), 0);
        if (n > 0) {
            const char junk[] = "this is not a JSON response\n";
            sendAll(clientFd, junk, sizeof(junk) - 1);
        }
        close(clientFd);
        return;
    }

    const int targetFd = dialTarget(target);
    if (targetFd < 0) {
        close(clientFd);
        return;
    }
    relay(clientFd, targetFd);
    close(clientFd);
    close(targetFd);
}

void
FaultProxy::relay(int clientFd, int targetFd)
{
    const std::uint64_t epoch = severEpoch.load();
    const std::uint64_t cut = cutAfter.load();
    std::uint64_t fromTarget = 0;
    char buf[4096];
    while (!stopping.load() && severEpoch.load() == epoch) {
        pollfd pfds[2];
        pfds[0] = {};
        pfds[0].fd = clientFd;
        pfds[0].events = POLLIN;
        pfds[1] = {};
        pfds[1].fd = targetFd;
        pfds[1].events = POLLIN;
        const int pr = poll(pfds, 2, 50);
        if (pr < 0 && errno != EINTR)
            return;
        if (pr <= 0)
            continue;

        if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
            const ssize_t n = recv(clientFd, buf, sizeof(buf), 0);
            if (n == 0 || (n < 0 && errno != EINTR))
                return;
            if (n > 0) {
                const unsigned d = mode.load() == Mode::Delay
                                       ? delayMs.load()
                                       : 0;
                if (d)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(d));
                if (!sendAll(targetFd, buf,
                             static_cast<std::size_t>(n)))
                    return;
            }
        }
        if (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) {
            const ssize_t n = recv(targetFd, buf, sizeof(buf), 0);
            if (n == 0 || (n < 0 && errno != EINTR))
                return;
            if (n > 0) {
                std::size_t allow = static_cast<std::size_t>(n);
                if (cut) {
                    if (fromTarget >= cut)
                        return;  // budget exhausted: cut mid-response
                    allow = static_cast<std::size_t>(
                        std::min<std::uint64_t>(allow,
                                                cut - fromTarget));
                }
                if (!sendAll(clientFd, buf, allow))
                    return;
                fromTarget += allow;
                if (cut && fromTarget >= cut)
                    return;
            }
        }
    }
}

} // namespace dcg::serve::testing
