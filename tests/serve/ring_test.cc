/**
 * Tests for the consistent-hash ring behind the dcgserved cluster:
 * determinism, order-independence (the agreement property client and
 * servers rely on), distribution balance across 2-4 nodes, and the
 * bounded-remapping property on node addition/removal.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "serve/ring.hh"

using namespace dcg::serve;

namespace {

std::vector<std::string>
syntheticKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("bench=b" + std::to_string(i % 26) +
                       ";seed=" + std::to_string(i));
    return keys;
}

} // namespace

TEST(HashRing, OwnerIsDeterministic)
{
    const HashRing a({"n1:1", "n2:2", "n3:3"});
    const HashRing b({"n1:1", "n2:2", "n3:3"});
    for (const std::string &k : syntheticKeys(200))
        EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(HashRing, OwnerIsOrderIndependent)
{
    // The agreement property: a client building the ring from a
    // --server list and a server building it from --peers must name
    // the same owner regardless of list order.
    const HashRing a({"n1:1", "n2:2", "n3:3", "n4:4"});
    const HashRing b({"n4:4", "n2:2", "n1:1", "n3:3"});
    for (const std::string &k : syntheticKeys(500))
        EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(HashRing, OwnerIndexAgreesWithOwner)
{
    const HashRing ring({"n1:1", "n2:2", "n3:3"});
    for (const std::string &k : syntheticKeys(100))
        EXPECT_EQ(ring.nodeNames()[ring.ownerIndex(k)], ring.owner(k));
}

TEST(HashRing, DistributionIsRoughlyBalanced)
{
    // With 64 virtual points per node, no node should end up with a
    // grossly lopsided share. Bound loosely (half to double the fair
    // share) — the point is "spread", not perfection.
    const auto keys = syntheticKeys(3000);
    for (std::size_t n = 2; n <= 4; ++n) {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < n; ++i)
            names.push_back("node" + std::to_string(i) + ":7878");
        const HashRing ring(names);
        std::map<std::string, std::size_t> counts;
        for (const std::string &k : keys)
            ++counts[ring.owner(k)];
        EXPECT_EQ(counts.size(), n) << "some node owns nothing";
        const double fair =
            static_cast<double>(keys.size()) / static_cast<double>(n);
        for (const auto &[name, c] : counts) {
            EXPECT_GT(static_cast<double>(c), fair * 0.5)
                << name << " at N=" << n;
            EXPECT_LT(static_cast<double>(c), fair * 2.0)
                << name << " at N=" << n;
        }
    }
}

TEST(HashRing, AddingANodeOnlyRemapsToTheNewNode)
{
    // The stability property: growing the ring must never shuffle a
    // key between two old nodes — everything that moves, moves to the
    // newcomer. (This is what keeps existing shards' stores warm.)
    const HashRing before({"a:1", "b:2", "c:3"});
    const HashRing after({"a:1", "b:2", "c:3", "d:4"});
    const auto keys = syntheticKeys(2000);
    std::size_t moved = 0;
    for (const std::string &k : keys) {
        const std::string &o = before.owner(k);
        const std::string &n = after.owner(k);
        if (o != n) {
            EXPECT_EQ(n, "d:4") << "key moved between old nodes";
            ++moved;
        }
    }
    // Roughly 1/4 of the space moves; allow generous slack.
    EXPECT_GT(moved, keys.size() / 10);
    EXPECT_LT(moved, keys.size() / 2);
}

TEST(HashRing, RemovingANodeOnlyRemapsItsKeys)
{
    const HashRing before({"a:1", "b:2", "c:3"});
    const HashRing after({"a:1", "c:3"});
    for (const std::string &k : syntheticKeys(1000)) {
        if (before.owner(k) != "b:2")
            EXPECT_EQ(after.owner(k), before.owner(k));
    }
}

TEST(HashRing, SingleNodeOwnsEverything)
{
    const HashRing ring({"only:1"});
    for (const std::string &k : syntheticKeys(50)) {
        EXPECT_EQ(ring.owner(k), "only:1");
        EXPECT_EQ(ring.ownerIndex(k), 0u);
    }
}

TEST(HashRing, HashIsStable)
{
    // Pin the exact hash function (FNV-1a + avalanche finisher):
    // silently changing it would strand every record on the wrong
    // shard of an existing deployment.
    EXPECT_EQ(HashRing::hash(""), 0xefd01f60ba992926ULL);
    EXPECT_EQ(HashRing::hash("a"), 0x82a2a958a9bece5bULL);
    EXPECT_EQ(HashRing::hash("dcg"), HashRing::hash("dcg"));
    EXPECT_NE(HashRing::hash("dcg"), HashRing::hash("dcf"));
}
