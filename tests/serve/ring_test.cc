/**
 * Tests for the consistent-hash ring behind the dcgserved cluster:
 * determinism, order-independence (the agreement property client and
 * servers rely on), distribution balance across 2-4 nodes, and the
 * bounded-remapping property on node addition/removal.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "serve/ring.hh"

using namespace dcg::serve;

namespace {

std::vector<std::string>
syntheticKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("bench=b" + std::to_string(i % 26) +
                       ";seed=" + std::to_string(i));
    return keys;
}

} // namespace

TEST(HashRing, OwnerIsDeterministic)
{
    const HashRing a({"n1:1", "n2:2", "n3:3"});
    const HashRing b({"n1:1", "n2:2", "n3:3"});
    for (const std::string &k : syntheticKeys(200))
        EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(HashRing, OwnerIsOrderIndependent)
{
    // The agreement property: a client building the ring from a
    // --server list and a server building it from --peers must name
    // the same owner regardless of list order.
    const HashRing a({"n1:1", "n2:2", "n3:3", "n4:4"});
    const HashRing b({"n4:4", "n2:2", "n1:1", "n3:3"});
    for (const std::string &k : syntheticKeys(500))
        EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(HashRing, OwnerIndexAgreesWithOwner)
{
    const HashRing ring({"n1:1", "n2:2", "n3:3"});
    for (const std::string &k : syntheticKeys(100))
        EXPECT_EQ(ring.nodeNames()[ring.ownerIndex(k)], ring.owner(k));
}

TEST(HashRing, DistributionIsRoughlyBalanced)
{
    // With 64 virtual points per node, no node should end up with a
    // grossly lopsided share. Bound loosely (half to double the fair
    // share) — the point is "spread", not perfection.
    const auto keys = syntheticKeys(3000);
    for (std::size_t n = 2; n <= 4; ++n) {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < n; ++i)
            names.push_back("node" + std::to_string(i) + ":7878");
        const HashRing ring(names);
        std::map<std::string, std::size_t> counts;
        for (const std::string &k : keys)
            ++counts[ring.owner(k)];
        EXPECT_EQ(counts.size(), n) << "some node owns nothing";
        const double fair =
            static_cast<double>(keys.size()) / static_cast<double>(n);
        for (const auto &[name, c] : counts) {
            EXPECT_GT(static_cast<double>(c), fair * 0.5)
                << name << " at N=" << n;
            EXPECT_LT(static_cast<double>(c), fair * 2.0)
                << name << " at N=" << n;
        }
    }
}

TEST(HashRing, AddingANodeOnlyRemapsToTheNewNode)
{
    // The stability property: growing the ring must never shuffle a
    // key between two old nodes — everything that moves, moves to the
    // newcomer. (This is what keeps existing shards' stores warm.)
    const HashRing before({"a:1", "b:2", "c:3"});
    const HashRing after({"a:1", "b:2", "c:3", "d:4"});
    const auto keys = syntheticKeys(2000);
    std::size_t moved = 0;
    for (const std::string &k : keys) {
        const std::string &o = before.owner(k);
        const std::string &n = after.owner(k);
        if (o != n) {
            EXPECT_EQ(n, "d:4") << "key moved between old nodes";
            ++moved;
        }
    }
    // Roughly 1/4 of the space moves; allow generous slack.
    EXPECT_GT(moved, keys.size() / 10);
    EXPECT_LT(moved, keys.size() / 2);
}

TEST(HashRing, RemovingANodeOnlyRemapsItsKeys)
{
    const HashRing before({"a:1", "b:2", "c:3"});
    const HashRing after({"a:1", "c:3"});
    for (const std::string &k : syntheticKeys(1000)) {
        if (before.owner(k) != "b:2") {
            EXPECT_EQ(after.owner(k), before.owner(k));
        }
    }
}

TEST(HashRing, SingleNodeOwnsEverything)
{
    const HashRing ring({"only:1"});
    for (const std::string &k : syntheticKeys(50)) {
        EXPECT_EQ(ring.owner(k), "only:1");
        EXPECT_EQ(ring.ownerIndex(k), 0u);
    }
}

TEST(HashRing, HashIsStable)
{
    // Pin the exact hash function (FNV-1a + avalanche finisher):
    // silently changing it would strand every record on the wrong
    // shard of an existing deployment.
    EXPECT_EQ(HashRing::hash(""), 0xefd01f60ba992926ULL);
    EXPECT_EQ(HashRing::hash("a"), 0x82a2a958a9bece5bULL);
    EXPECT_EQ(HashRing::hash("dcg"), HashRing::hash("dcg"));
    EXPECT_NE(HashRing::hash("dcg"), HashRing::hash("dcf"));
}

TEST(HashRing, OwnersArePinned)
{
    // Pin full replica sets, not just the hash: the successor walk
    // (dedup order, wrap-around) is part of the on-disk contract too
    // — a silent change would move every replica of an existing
    // deployment.
    const HashRing ring({"a:1", "b:2", "c:3", "d:4"});
    using V = std::vector<std::string>;
    EXPECT_EQ(ring.owners("bench=gzip;scheme=dcg", 3),
              (V{"b:2", "a:1", "d:4"}));
    EXPECT_EQ(ring.owners("bench=mcf;scheme=base", 3),
              (V{"c:3", "a:1", "b:2"}));
    EXPECT_EQ(ring.owners("bench=art;scheme=dcg", 3),
              (V{"a:1", "d:4", "c:3"}));
}

TEST(HashRing, OwnersPrefixIsTheSingleOwner)
{
    const HashRing ring({"n1:1", "n2:2", "n3:3", "n4:4"});
    for (const std::string &k : syntheticKeys(500)) {
        const auto two = ring.ownerIndices(k, 2);
        ASSERT_EQ(two.size(), 2u);
        EXPECT_EQ(two[0], ring.ownerIndex(k));
        EXPECT_EQ(ring.owners(k, 1),
                  std::vector<std::string>{ring.owner(k)});
    }
}

TEST(HashRing, OwnersBeyondClusterSizeNameEveryNodeOnce)
{
    // k >= nodeCount() means "the whole cluster holds the key":
    // every node exactly once, primary first, for any oversized k.
    const HashRing ring({"n1:1", "n2:2", "n3:3"});
    for (const std::string &k : syntheticKeys(200)) {
        for (std::size_t kk : {std::size_t{3}, std::size_t{99}}) {
            const auto idx = ring.ownerIndices(k, kk);
            ASSERT_EQ(idx.size(), 3u) << "k=" << kk;
            std::set<std::size_t> seen(idx.begin(), idx.end());
            EXPECT_EQ(seen.size(), 3u) << "duplicate holder for " << k;
            EXPECT_EQ(idx[0], ring.ownerIndex(k));
        }
    }
}

TEST(HashRing, ReplicaSetsAreDistinctAcrossClusterSizes)
{
    // Property sweep: 10k random-ish keys on every cluster size the
    // service plausibly runs (1-6 nodes) — replica sets are always
    // min(k, N) *distinct* in-range nodes, led by the primary.
    const auto keys = syntheticKeys(10000);
    for (std::size_t n = 1; n <= 6; ++n) {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < n; ++i)
            names.push_back("node" + std::to_string(i) + ":7878");
        const HashRing ring(names);
        const std::size_t k = n < 2 ? 1 : 2;
        for (const std::string &key : keys) {
            const auto idx = ring.ownerIndices(key, k);
            ASSERT_EQ(idx.size(), std::min(k, n));
            EXPECT_EQ(idx[0], ring.ownerIndex(key));
            std::set<std::size_t> seen(idx.begin(), idx.end());
            EXPECT_EQ(seen.size(), idx.size())
                << "duplicate holder at N=" << n;
            for (std::size_t i : idx)
                EXPECT_LT(i, n);
        }
    }
}

TEST(HashRing, ReplicaSetsArePermutationStable)
{
    // The agreement property extended to replica sets: clients and
    // servers build the ring from differently-ordered lists and must
    // still agree on every key's full holder set, in order.
    const HashRing a({"n1:1", "n2:2", "n3:3", "n4:4", "n5:5"});
    const HashRing b({"n4:4", "n1:1", "n5:5", "n3:3", "n2:2"});
    for (const std::string &k : syntheticKeys(2000))
        EXPECT_EQ(a.owners(k, 3), b.owners(k, 3));
}

TEST(HashRing, AddingANodeMovesABoundedShareOfPrimaries)
{
    // Quantified stability: growing N=4 -> 5 remaps about 1/5 of all
    // primaries (the newcomer's fair share) and not more — allow
    // 2x slack for vnode placement variance over 10k keys.
    const HashRing before({"a:1", "b:2", "c:3", "d:4"});
    const HashRing after({"a:1", "b:2", "c:3", "d:4", "e:5"});
    const auto keys = syntheticKeys(10000);
    std::size_t moved = 0;
    for (const std::string &k : keys) {
        if (before.owner(k) != after.owner(k)) {
            EXPECT_EQ(after.owner(k), "e:5");
            ++moved;
        }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LT(static_cast<double>(moved),
              static_cast<double>(keys.size()) / 5.0 * 2.0);
}
