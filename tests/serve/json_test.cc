/** Tests for the serve-layer JSON value model. */

#include <gtest/gtest.h>

#include "serve/json.hh"

using namespace dcg::serve;

TEST(Json, ParsesScalars)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse("42", v, err)) << err;
    EXPECT_EQ(v.asU64(), 42u);
    ASSERT_TRUE(JsonValue::parse("-7", v, err));
    EXPECT_EQ(v.asI64(), -7);
    ASSERT_TRUE(JsonValue::parse("1.5", v, err));
    EXPECT_DOUBLE_EQ(v.asNumber(), 1.5);
    ASSERT_TRUE(JsonValue::parse("true", v, err));
    EXPECT_TRUE(v.asBool());
    ASSERT_TRUE(JsonValue::parse("null", v, err));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(JsonValue::parse("\"a\\nb\"", v, err));
    EXPECT_EQ(v.asString(), "a\nb");
}

TEST(Json, ParsesNestedStructures)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(
        "{\"op\": \"submit\", \"grid\": {\"benchmarks\": [\"gzip\","
        " \"mcf\"], \"insts\": 4000}}",
        v, err))
        << err;
    EXPECT_EQ(v.get("op").asString(), "submit");
    const JsonValue &grid = v.get("grid");
    ASSERT_TRUE(grid.isObject());
    ASSERT_EQ(grid.get("benchmarks").items().size(), 2u);
    EXPECT_EQ(grid.get("benchmarks").items()[1].asString(), "mcf");
    EXPECT_EQ(grid.get("insts").asU64(), 4000u);
    EXPECT_TRUE(grid.get("no_such_key").isNull());
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("", v, err));
    EXPECT_FALSE(JsonValue::parse("{\"a\": }", v, err));
    EXPECT_FALSE(JsonValue::parse("[1, 2", v, err));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", v, err));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v, err));
    EXPECT_FALSE(JsonValue::parse("nulll", v, err));
    EXPECT_FALSE(err.empty());
}

TEST(Json, PreservesNumberTokensVerbatim)
{
    // The --server path depends on numbers surviving a parse/dump
    // round-trip token-for-token (max_digits10 doubles included).
    const std::string text =
        "[0.10000000000000001, 1.7976931348623157e+308, "
        "18446744073709551615, -3]";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(text, v, err)) << err;
    EXPECT_EQ(v.dump(), "[0.10000000000000001, 1.7976931348623157e+308,"
                        " 18446744073709551615, -3]");
    EXPECT_EQ(v.items()[2].asU64(), 18446744073709551615ull);
}

TEST(Json, BuildsAndDumpsObjects)
{
    JsonValue o = JsonValue::object();
    o.set("op", JsonValue::string("status"));
    o.set("id", JsonValue::integer(std::uint64_t{7}));
    o.set("ok", JsonValue::boolean(true));
    EXPECT_EQ(o.dump(), "{\"op\": \"status\", \"id\": 7, \"ok\": true}");

    // set() replaces in place, preserving member order.
    o.set("op", JsonValue::string("result"));
    EXPECT_EQ(o.dump(),
              "{\"op\": \"result\", \"id\": 7, \"ok\": true}");
}

TEST(Json, EscapesStrings)
{
    EXPECT_EQ(JsonValue::encodeString("a\"b\\c\nd"),
              "\"a\\\"b\\\\c\\nd\"");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse("\"\\u0041\\u00e9\"", v, err)) << err;
    EXPECT_EQ(v.asString(), "A\xc3\xa9");
}
