/**
 * Tests for the faultnet FaultProxy itself — the fault-injection
 * harness must be trustworthy before the replication and failover
 * suites lean on it. One real dcgserved node sits behind a proxy and
 * each fault mode is checked for its contract: transparent when
 * passing, failing *fast* or failing *within the timeout bound* when
 * faulting, and never taking the test process down.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "exp/engine.hh"
#include "serve/client.hh"
#include "serve/faultnet.hh"
#include "serve/replica_cluster.hh"
#include "sim/report.hh"

using namespace dcg;
using namespace dcg::serve;
using namespace dcg::serve::testing;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

JobSpec
tinySpec(const char *bench = "gzip")
{
    JobSpec s;
    s.bench = bench;
    s.insts = kInsts;
    s.warmup = kWarmup;
    return s;
}

JsonValue
statsReq()
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("stats"));
    return req;
}

/** One plain node with a FaultProxy in front of it. */
class ProxiedNode
{
  public:
    ProxiedNode() : cluster(1, 1, "")
    {
        cluster.start();
        proxy = std::make_unique<FaultProxy>(cluster.endpoint(0));
    }

    FaultProxy &fault() { return *proxy; }
    Endpoint front() const { return proxy->address(); }

  private:
    ReplicaCluster cluster;
    std::unique_ptr<FaultProxy> proxy;
};

} // namespace

TEST(Faultnet, PassModeIsTransparent)
{
    ProxiedNode node;

    exp::Engine local(1);
    std::ostringstream expected;
    writeResultsJson(local.run({tinySpec().toJob()}), expected);

    Client client(node.front().str());
    std::ostringstream got;
    writeResultsJson(client.runJobs({tinySpec()}), got);
    EXPECT_EQ(got.str(), expected.str());
    EXPECT_GE(node.fault().connectionsSeen(), 1u);
}

TEST(Faultnet, CloseOnAcceptFailsTheExchangeFast)
{
    ProxiedNode node;
    node.fault().setMode(FaultProxy::Mode::CloseOnAccept);

    const auto begin = std::chrono::steady_clock::now();
    Connection conn;
    std::string err;
    JsonValue resp;
    // The TCP connect itself may complete (backlog), so the failure
    // is allowed to surface at either step — but it must surface.
    bool ok = conn.open(node.front(), err);
    if (ok)
        ok = conn.roundTrip(statsReq(), resp, err);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(err.empty());
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(Faultnet, BlackholeFailsWithinTheConfiguredTimeout)
{
    ProxiedNode node;
    node.fault().setMode(FaultProxy::Mode::Blackhole);

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(node.front(), err, 300)) << err;

    const auto begin = std::chrono::steady_clock::now();
    JsonValue resp;
    EXPECT_FALSE(conn.roundTrip(statsReq(), resp, err));
    EXPECT_FALSE(err.empty());
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    // Bounded by the 300ms socket timeout, with generous slack for a
    // loaded machine — the point is "seconds, not forever".
    EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(Faultnet, GarbageResponseIsAParseErrorNotACrash)
{
    ProxiedNode node;
    node.fault().setMode(FaultProxy::Mode::Garbage);

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(node.front(), err)) << err;
    JsonValue resp;
    EXPECT_FALSE(conn.roundTrip(statsReq(), resp, err));
    EXPECT_FALSE(err.empty());
}

TEST(Faultnet, CloseAfterBytesTruncatesTheResponse)
{
    ProxiedNode node;
    // Any stats response is far longer than 10 bytes, so the cut
    // lands mid-response: the client sees a dead connection, not a
    // short-but-parseable line.
    node.fault().setCloseAfterBytes(10);

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(node.front(), err)) << err;
    JsonValue resp;
    EXPECT_FALSE(conn.roundTrip(statsReq(), resp, err));
}

TEST(Faultnet, DelayModeStillDeliversIntactResponses)
{
    ProxiedNode node;
    node.fault().setMode(FaultProxy::Mode::Delay);
    node.fault().setDelayMs(100);

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(node.front(), err)) << err;
    const auto begin = std::chrono::steady_clock::now();
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(statsReq(), resp, err)) << err;
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    EXPECT_TRUE(resp.get("ok").asBool(false));
    EXPECT_TRUE(resp.has("stats"));
    EXPECT_GE(elapsed, std::chrono::milliseconds(100));
}

TEST(Faultnet, LinkHealsWhenTheModeIsResetToPass)
{
    ProxiedNode node;
    node.fault().setMode(FaultProxy::Mode::CloseOnAccept);

    Connection conn;
    std::string err;
    JsonValue resp;
    bool ok = conn.open(node.front(), err);
    if (ok)
        ok = conn.roundTrip(statsReq(), resp, err);
    EXPECT_FALSE(ok);

    // Heal the link: the very next connection relays transparently.
    node.fault().setMode(FaultProxy::Mode::Pass);
    ASSERT_TRUE(conn.open(node.front(), err)) << err;
    ASSERT_TRUE(conn.roundTrip(statsReq(), resp, err)) << err;
    EXPECT_TRUE(resp.get("ok").asBool(false));
}

TEST(Faultnet, SeverActiveCutsAnEstablishedConnection)
{
    ProxiedNode node;
    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(node.front(), err)) << err;
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(statsReq(), resp, err)) << err;

    node.fault().severActive();
    // The relay threads poll at 50ms granularity; give the cut a
    // moment to land before the next exchange observes it.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_FALSE(conn.roundTrip(statsReq(), resp, err));
}
