/**
 * Tests for the persistent ResultStore: bit-exact round-trips,
 * persistence across instances, corruption recovery (satellite:
 * truncated record -> miss -> re-simulate -> record repaired), and the
 * Engine integration (disk hits instead of simulations after restart).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <unistd.h>

#include "exp/engine.hh"
#include "serve/store.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::exp;
using namespace dcg::serve;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

/** Fresh per-test directory under the build tree's temp space. */
std::string
freshDir(const std::string &tag)
{
    namespace fs = std::filesystem;
    const fs::path p = fs::temp_directory_path() /
        ("dcg_store_test_" + tag + "_" +
         std::to_string(::getpid()));
    fs::remove_all(p);
    return p.string();
}

Job
smallJob(const char *bench, GatingScheme s)
{
    return makeJob(profileByName(bench), table1Config(s), kInsts,
                   kWarmup);
}

/** Bit-exactness via the canonical serialisation. */
std::string
asJson(const RunResult &r)
{
    std::ostringstream os;
    writeResultsJson({r}, os);
    return os.str();
}

} // namespace

TEST(ResultStore, PutGetRoundTripsBitExactly)
{
    const std::string dir = freshDir("roundtrip");
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 0u);

    Engine engine(1);
    const Job job = smallJob("gzip", GatingScheme::Dcg);
    const RunResult r = engine.runOne(job);
    const std::string key = jobKey(job);

    RunResult out;
    EXPECT_FALSE(store.get(key, out));
    store.put(key, r);
    EXPECT_EQ(store.size(), 1u);
    ASSERT_TRUE(store.get(key, out));
    EXPECT_EQ(asJson(r), asJson(out));
    EXPECT_EQ(store.corruptRecords(), 0u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, RecordsPersistAcrossInstances)
{
    const std::string dir = freshDir("persist");
    Engine engine(1);
    const Job job = smallJob("mcf", GatingScheme::None);
    const RunResult r = engine.runOne(job);
    const std::string key = jobKey(job);

    {
        ResultStore store(dir);
        store.put(key, r);
    }

    // A brand-new instance (a "restarted service") indexes and serves
    // the record written by the previous one.
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.size(), 1u);
    RunResult out;
    ASSERT_TRUE(reopened.get(key, out));
    EXPECT_EQ(asJson(r), asJson(out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, DistinctKeysGetDistinctRecords)
{
    const std::string dir = freshDir("distinct");
    ResultStore store(dir);
    Engine engine(2);
    const Job a = smallJob("gzip", GatingScheme::None);
    const Job b = smallJob("gzip", GatingScheme::Dcg);
    ASSERT_NE(jobKey(a), jobKey(b));
    EXPECT_NE(store.recordPath(jobKey(a)), store.recordPath(jobKey(b)));

    store.put(jobKey(a), engine.runOne(a));
    store.put(jobKey(b), engine.runOne(b));
    EXPECT_EQ(store.size(), 2u);

    RunResult out;
    ASSERT_TRUE(store.get(jobKey(a), out));
    EXPECT_EQ(out.scheme, "base");
    ASSERT_TRUE(store.get(jobKey(b), out));
    EXPECT_EQ(out.scheme, "dcg");

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, TruncatedRecordIsAMissAndGetsRepaired)
{
    const std::string dir = freshDir("truncated");
    ResultStore store(dir);
    Engine engine(1);
    const Job job = smallJob("equake", GatingScheme::Dcg);
    const RunResult r = engine.runOne(job);
    const std::string key = jobKey(job);
    store.put(key, r);

    // Truncate the record mid-body, as a crash mid-write (without the
    // tmp+rename dance) would have left it.
    const std::string path = store.recordPath(key);
    {
        std::ifstream is(path);
        std::string all((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
        ASSERT_GT(all.size(), 40u);
        std::ofstream os(path, std::ios::trunc);
        os << all.substr(0, all.size() / 2);
    }

    RunResult out;
    EXPECT_FALSE(store.get(key, out));
    EXPECT_EQ(store.corruptRecords(), 1u);

    // put() repairs the damaged record in place.
    store.put(key, r);
    ASSERT_TRUE(store.get(key, out));
    EXPECT_EQ(asJson(r), asJson(out));
    EXPECT_EQ(store.corruptRecords(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, GarbageAndForeignRecordsAreMisses)
{
    const std::string dir = freshDir("garbage");
    ResultStore store(dir);
    Engine engine(1);
    const Job job = smallJob("gzip", GatingScheme::None);
    const std::string key = jobKey(job);

    // Unparseable header.
    {
        std::ofstream os(store.recordPath(key));
        os << "not json at all\n";
    }
    RunResult out;
    EXPECT_FALSE(store.get(key, out));
    EXPECT_EQ(store.corruptRecords(), 1u);

    // Valid header but for a *different* key — the shape a 128-bit
    // hash collision would take. The embedded key catches it.
    const RunResult r = engine.runOne(job);
    store.put("some other key entirely", r);
    {
        std::ifstream src(store.recordPath("some other key entirely"));
        std::ofstream dst(store.recordPath(key), std::ios::trunc);
        dst << src.rdbuf();
    }
    EXPECT_FALSE(store.get(key, out));
    EXPECT_EQ(store.corruptRecords(), 2u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, EngineServesWarmStoreWithoutSimulating)
{
    const std::string dir = freshDir("engine");
    const Job a = smallJob("gzip", GatingScheme::None);
    const Job b = smallJob("gzip", GatingScheme::Dcg);

    // Cold engine: everything simulates, and lands in the store.
    std::vector<RunResult> first;
    {
        Engine engine(2);
        engine.attachStore(std::make_shared<ResultStore>(dir));
        first = engine.run({a, b});
        EXPECT_EQ(engine.simulations(), 2u);
        EXPECT_EQ(engine.diskHits(), 0u);
        EXPECT_EQ(engine.cacheMisses(), 2u);
    }

    // "Restarted" engine on the same directory: all memory misses are
    // answered by disk; zero simulations run.
    Engine warm(2);
    auto store = std::make_shared<ResultStore>(dir);
    EXPECT_EQ(store->size(), 2u);
    warm.attachStore(store);
    RunOutcome outcome = RunOutcome::Simulated;
    const RunResult ra = warm.runOne(a, &outcome);
    EXPECT_EQ(outcome, RunOutcome::DiskHit);
    const RunResult rb = warm.runOne(b, &outcome);
    EXPECT_EQ(outcome, RunOutcome::DiskHit);
    EXPECT_EQ(warm.simulations(), 0u);
    EXPECT_EQ(warm.diskHits(), 2u);
    // Disk hits are still memory misses — the counter contract.
    EXPECT_EQ(warm.cacheMisses(), 2u);
    EXPECT_EQ(asJson(first[0]), asJson(ra));
    EXPECT_EQ(asJson(first[1]), asJson(rb));

    // Third access is now a pure memory hit.
    warm.runOne(a, &outcome);
    EXPECT_EQ(outcome, RunOutcome::MemHit);
    EXPECT_EQ(warm.cacheHits(), 1u);

    std::filesystem::remove_all(dir);
}
