/**
 * Tests for the persistent ResultStore: bit-exact round-trips,
 * persistence across instances, corruption recovery (satellite:
 * truncated record -> miss -> re-simulate -> record repaired), and the
 * Engine integration (disk hits instead of simulations after restart).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <unistd.h>

#include "exp/engine.hh"
#include "serve/store.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using namespace dcg::exp;
using namespace dcg::serve;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

/** Fresh per-test directory under the build tree's temp space. */
std::string
freshDir(const std::string &tag)
{
    namespace fs = std::filesystem;
    const fs::path p = fs::temp_directory_path() /
        ("dcg_store_test_" + tag + "_" +
         std::to_string(::getpid()));
    fs::remove_all(p);
    return p.string();
}

Job
smallJob(const char *bench, const std::string &scheme)
{
    return makeJob(profileByName(bench), table1Config(scheme), kInsts,
                   kWarmup);
}

/** Bit-exactness via the canonical serialisation. */
std::string
asJson(const RunResult &r)
{
    std::ostringstream os;
    writeResultsJson({r}, os);
    return os.str();
}

} // namespace

TEST(ResultStore, PutGetRoundTripsBitExactly)
{
    const std::string dir = freshDir("roundtrip");
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 0u);

    Engine engine(1);
    const Job job = smallJob("gzip", "dcg");
    const RunResult r = engine.runOne(job);
    const std::string key = jobKey(job);

    RunResult out;
    EXPECT_FALSE(store.get(key, out));
    store.put(key, r);
    EXPECT_EQ(store.size(), 1u);
    ASSERT_TRUE(store.get(key, out));
    EXPECT_EQ(asJson(r), asJson(out));
    EXPECT_EQ(store.corruptRecords(), 0u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, RecordsPersistAcrossInstances)
{
    const std::string dir = freshDir("persist");
    Engine engine(1);
    const Job job = smallJob("mcf", "base");
    const RunResult r = engine.runOne(job);
    const std::string key = jobKey(job);

    {
        ResultStore store(dir);
        store.put(key, r);
    }

    // A brand-new instance (a "restarted service") indexes and serves
    // the record written by the previous one.
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.size(), 1u);
    RunResult out;
    ASSERT_TRUE(reopened.get(key, out));
    EXPECT_EQ(asJson(r), asJson(out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, DistinctKeysGetDistinctRecords)
{
    const std::string dir = freshDir("distinct");
    ResultStore store(dir);
    Engine engine(2);
    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");
    ASSERT_NE(jobKey(a), jobKey(b));
    EXPECT_NE(store.recordPath(jobKey(a)), store.recordPath(jobKey(b)));

    store.put(jobKey(a), engine.runOne(a));
    store.put(jobKey(b), engine.runOne(b));
    EXPECT_EQ(store.size(), 2u);

    RunResult out;
    ASSERT_TRUE(store.get(jobKey(a), out));
    EXPECT_EQ(out.scheme, "base");
    ASSERT_TRUE(store.get(jobKey(b), out));
    EXPECT_EQ(out.scheme, "dcg");

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, TruncatedRecordIsAMissAndGetsRepaired)
{
    const std::string dir = freshDir("truncated");
    ResultStore store(dir);
    Engine engine(1);
    const Job job = smallJob("equake", "dcg");
    const RunResult r = engine.runOne(job);
    const std::string key = jobKey(job);
    store.put(key, r);

    // Truncate the record mid-body, as a crash mid-write (without the
    // tmp+rename dance) would have left it.
    const std::string path = store.recordPath(key);
    {
        std::ifstream is(path);
        std::string all((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
        ASSERT_GT(all.size(), 40u);
        std::ofstream os(path, std::ios::trunc);
        os << all.substr(0, all.size() / 2);
    }

    RunResult out;
    EXPECT_FALSE(store.get(key, out));
    EXPECT_EQ(store.corruptRecords(), 1u);

    // put() repairs the damaged record in place.
    store.put(key, r);
    ASSERT_TRUE(store.get(key, out));
    EXPECT_EQ(asJson(r), asJson(out));
    EXPECT_EQ(store.corruptRecords(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, GarbageAndForeignRecordsAreMisses)
{
    const std::string dir = freshDir("garbage");
    ResultStore store(dir);
    Engine engine(1);
    const Job job = smallJob("gzip", "base");
    const std::string key = jobKey(job);

    // Unparseable header.
    {
        std::ofstream os(store.recordPath(key));
        os << "not json at all\n";
    }
    RunResult out;
    EXPECT_FALSE(store.get(key, out));
    EXPECT_EQ(store.corruptRecords(), 1u);

    // Valid header but for a *different* key — the shape a 128-bit
    // hash collision would take. The embedded key catches it.
    const RunResult r = engine.runOne(job);
    store.put("some other key entirely", r);
    {
        std::ifstream src(store.recordPath("some other key entirely"));
        std::ofstream dst(store.recordPath(key), std::ios::trunc);
        dst << src.rdbuf();
    }
    EXPECT_FALSE(store.get(key, out));
    EXPECT_EQ(store.corruptRecords(), 2u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, EngineServesWarmStoreWithoutSimulating)
{
    const std::string dir = freshDir("engine");
    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");

    // Cold engine: everything simulates, and lands in the store.
    std::vector<RunResult> first;
    {
        Engine engine(2);
        engine.attachStore(std::make_shared<ResultStore>(dir));
        first = engine.run({a, b});
        EXPECT_EQ(engine.simulations(), 2u);
        EXPECT_EQ(engine.diskHits(), 0u);
        EXPECT_EQ(engine.cacheMisses(), 2u);
    }

    // "Restarted" engine on the same directory: all memory misses are
    // answered by disk; zero simulations run.
    Engine warm(2);
    auto store = std::make_shared<ResultStore>(dir);
    EXPECT_EQ(store->size(), 2u);
    warm.attachStore(store);
    RunOutcome outcome = RunOutcome::Simulated;
    const RunResult ra = warm.runOne(a, &outcome);
    EXPECT_EQ(outcome, RunOutcome::DiskHit);
    const RunResult rb = warm.runOne(b, &outcome);
    EXPECT_EQ(outcome, RunOutcome::DiskHit);
    EXPECT_EQ(warm.simulations(), 0u);
    EXPECT_EQ(warm.diskHits(), 2u);
    // Disk hits are still memory misses — the counter contract.
    EXPECT_EQ(warm.cacheMisses(), 2u);
    EXPECT_EQ(asJson(first[0]), asJson(ra));
    EXPECT_EQ(asJson(first[1]), asJson(rb));

    // Third access is now a pure memory hit.
    warm.runOne(a, &outcome);
    EXPECT_EQ(outcome, RunOutcome::MemHit);
    EXPECT_EQ(warm.cacheHits(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, EvictToDropsLeastRecentlyUsedFirst)
{
    const std::string dir = freshDir("lru");
    ResultStore store(dir);

    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");
    const Job c = smallJob("mcf", "dcg");
    Engine engine(1);
    store.put(jobKey(a), engine.runOne(a));
    store.put(jobKey(b), engine.runOne(b));
    store.put(jobKey(c), engine.runOne(c));
    ASSERT_EQ(store.entries(), 3u);
    const std::uint64_t full = store.bytes();
    ASSERT_GT(full, 0u);

    // Freshen 'a': the eviction victim must now be 'b', the LRU.
    RunResult out;
    ASSERT_TRUE(store.get(jobKey(a), out));

    EXPECT_EQ(store.evictTo(full - 1), 1u);
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_EQ(store.evictedRecords(), 1u);
    EXPECT_FALSE(std::filesystem::exists(store.recordPath(jobKey(b))));
    EXPECT_TRUE(store.get(jobKey(a), out));
    EXPECT_TRUE(store.get(jobKey(c), out));
    EXPECT_FALSE(store.get(jobKey(b), out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, PutEnforcesBudgetButNeverEvictsTheNewRecord)
{
    const std::string dir = freshDir("budget");
    ResultStore store(dir);

    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");
    Engine engine(1);
    const RunResult ra = engine.runOne(a);
    const RunResult rb = engine.runOne(b);

    store.put(jobKey(a), ra);
    ASSERT_EQ(store.entries(), 1u);
    // Budget fits exactly one record: the next put must evict the old
    // record, not the one it just wrote.
    store.setBudgetBytes(store.bytes());
    EXPECT_EQ(store.budgetBytes(), store.bytes());
    store.put(jobKey(b), rb);

    EXPECT_EQ(store.entries(), 1u);
    RunResult out;
    EXPECT_TRUE(store.get(jobKey(b), out));
    EXPECT_FALSE(store.get(jobKey(a), out));
    EXPECT_GE(store.evictedRecords(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, CompactRemovesTmpLeftoversAndInvalidRecords)
{
    namespace fs = std::filesystem;
    const std::string dir = freshDir("compact");
    ResultStore store(dir);

    const Job a = smallJob("gzip", "base");
    Engine engine(1);
    store.put(jobKey(a), engine.runOne(a));
    ASSERT_EQ(store.entries(), 1u);

    // Plant an interrupted-write leftover and a record-shaped file
    // whose content does not validate.
    {
        std::ofstream tmp(fs::path(dir) /
                          "00112233445566778899aabbccddeeff.json.tmp.7");
        tmp << "half a reco";
    }
    {
        std::ofstream bogus(fs::path(dir) /
                            "ffeeddccbbaa99887766554433221100.json");
        bogus << "{\"dcg_store\": 1, \"key\": \"nonsense\"}\n[]\n";
    }

    const std::size_t removed = store.compact();
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(store.compactions(), 1u);
    EXPECT_EQ(store.entries(), 1u);
    EXPECT_FALSE(fs::exists(
        fs::path(dir) /
        "00112233445566778899aabbccddeeff.json.tmp.7"));
    EXPECT_FALSE(fs::exists(
        fs::path(dir) / "ffeeddccbbaa99887766554433221100.json"));

    // The valid record survives and still round-trips.
    RunResult out;
    EXPECT_TRUE(store.get(jobKey(a), out));

    // The manifest summary was rewritten atomically.
    ASSERT_TRUE(fs::exists(fs::path(dir) / "manifest.json"));
    std::ifstream m(fs::path(dir) / "manifest.json");
    std::string manifest((std::istreambuf_iterator<char>(m)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(manifest.find("\"records\": 1"), std::string::npos)
        << manifest;

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, RestartSeedsEvictionOrderFromFileAges)
{
    namespace fs = std::filesystem;
    const std::string dir = freshDir("mtime");
    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");
    Engine engine(1);
    {
        ResultStore store(dir);
        store.put(jobKey(a), engine.runOne(a));
        store.put(jobKey(b), engine.runOne(b));
    }
    // Make 'a' unambiguously the older record.
    ResultStore probe(dir);
    fs::last_write_time(probe.recordPath(jobKey(a)),
                        fs::last_write_time(probe.recordPath(jobKey(b))) -
                            std::chrono::hours(1));

    ResultStore restarted(dir);
    ASSERT_EQ(restarted.entries(), 2u);
    EXPECT_EQ(restarted.evictTo(restarted.bytes() - 1), 1u);
    RunResult out;
    EXPECT_FALSE(restarted.get(jobKey(a), out));  // older: evicted
    EXPECT_TRUE(restarted.get(jobKey(b), out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ReplicaRecordRoundTripsAndIsMarked)
{
    const std::string dir = freshDir("replica");
    ResultStore store(dir);

    Engine engine(1);
    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");
    const RunResult ra = engine.runOne(a);
    const RunResult rb = engine.runOne(b);

    // A replica-marked record serves the exact bytes that were
    // pushed, and only replica records carry the marker.
    store.putReplica(jobKey(a), ra);
    store.put(jobKey(b), rb);
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_EQ(store.replicaRecords(), 1u);
    EXPECT_TRUE(store.recordIsReplica(jobKey(a)));
    EXPECT_FALSE(store.recordIsReplica(jobKey(b)));
    EXPECT_FALSE(store.recordIsReplica("never-stored"));

    RunResult out;
    ASSERT_TRUE(store.get(jobKey(a), out));
    EXPECT_EQ(asJson(ra), asJson(out));
    EXPECT_EQ(store.corruptRecords(), 0u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ReplicaMarkerSurvivesRestart)
{
    const std::string dir = freshDir("replica_restart");
    Engine engine(1);
    const Job a = smallJob("mcf", "dcg");
    const RunResult ra = engine.runOne(a);
    {
        ResultStore store(dir);
        store.putReplica(jobKey(a), ra);
    }

    // A cold process reads the same record: still valid (the extra
    // header member is tolerated), still replica-marked.
    ResultStore restarted(dir);
    ASSERT_EQ(restarted.entries(), 1u);
    EXPECT_TRUE(restarted.recordIsReplica(jobKey(a)));
    RunResult out;
    ASSERT_TRUE(restarted.get(jobKey(a), out));
    EXPECT_EQ(asJson(ra), asJson(out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, PutOverwritesTheReplicaMarker)
{
    const std::string dir = freshDir("replica_overwrite");
    ResultStore store(dir);
    Engine engine(1);
    const Job a = smallJob("twolf", "dcg");
    const RunResult ra = engine.runOne(a);

    // Replica then locally computed: the local write wins the marker
    // (last-write-wins of identical bytes, like concurrent fan-outs).
    store.putReplica(jobKey(a), ra);
    EXPECT_TRUE(store.recordIsReplica(jobKey(a)));
    store.put(jobKey(a), ra);
    EXPECT_FALSE(store.recordIsReplica(jobKey(a)));
    EXPECT_EQ(store.entries(), 1u);

    // And back: a later replica push re-marks it.
    store.putReplica(jobKey(a), ra);
    EXPECT_TRUE(store.recordIsReplica(jobKey(a)));
    EXPECT_EQ(store.entries(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ReplicaRecordsAreFirstClassForEviction)
{
    const std::string dir = freshDir("replica_lru");
    ResultStore store(dir);
    Engine engine(1);
    const Job a = smallJob("gzip", "base");
    const Job b = smallJob("gzip", "dcg");
    const Job c = smallJob("mcf", "dcg");

    // Replica and local records share one index, one byte count and
    // one LRU order — a replica is never double-counted or immune.
    store.put(jobKey(a), engine.runOne(a));
    store.putReplica(jobKey(b), engine.runOne(b));
    store.put(jobKey(c), engine.runOne(c));
    ASSERT_EQ(store.entries(), 3u);
    const std::uint64_t full = store.bytes();

    // Freshen 'a': the LRU victim is the replica record 'b'.
    RunResult out;
    ASSERT_TRUE(store.get(jobKey(a), out));
    EXPECT_EQ(store.evictTo(full - 1), 1u);
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_FALSE(store.get(jobKey(b), out));
    EXPECT_TRUE(store.get(jobKey(a), out));
    EXPECT_TRUE(store.get(jobKey(c), out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, CompactKeepsValidReplicaRecordsOnly)
{
    namespace fs = std::filesystem;
    const std::string dir = freshDir("replica_compact");
    ResultStore store(dir);
    Engine engine(1);
    const Job a = smallJob("art", "dcg");
    store.putReplica(jobKey(a), engine.runOne(a));
    ASSERT_EQ(store.entries(), 1u);

    // A corrupted replica record is garbage like any other: compact
    // deletes it; the valid replica record survives with its marker.
    {
        std::ofstream bogus(
            fs::path(dir) / "ffeeddccbbaa99887766554433221100.json");
        bogus << "{\"dcg_store\": 1, \"key\": \"x\", \"replica\":"
                 " true}\n[]\n";
    }
    EXPECT_EQ(store.compact(), 1u);
    EXPECT_EQ(store.entries(), 1u);
    EXPECT_TRUE(store.recordIsReplica(jobKey(a)));
    RunResult out;
    EXPECT_TRUE(store.get(jobKey(a), out));

    std::filesystem::remove_all(dir);
}
