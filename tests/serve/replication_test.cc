/**
 * Replication tests: with --replicas=k every key's record lands on
 * exactly the k ring successors (replica-marked on the followers),
 * a cold-restarted node serves its keys from the surviving replicas
 * with zero re-simulations, a corrupt replica heals through
 * re-simulation instead of failing, and the v3 `replicate`/`fetch`
 * ops hold their protocol contract.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "exp/engine.hh"
#include "exp/job.hh"
#include "serve/client.hh"
#include "serve/replica_cluster.hh"
#include "sim/report.hh"

using namespace dcg;
using namespace dcg::serve;
using namespace dcg::serve::testing;

namespace {

constexpr std::uint64_t kInsts = 2000;
constexpr std::uint64_t kWarmup = 500;

std::vector<JobSpec>
smallGridSpecs()
{
    std::vector<JobSpec> specs;
    for (const char *bench : {"gzip", "mcf", "twolf", "art"}) {
        for (const char *scheme : {"base", "dcg"}) {
            JobSpec s;
            s.bench = bench;
            s.scheme = scheme;
            s.insts = kInsts;
            s.warmup = kWarmup;
            specs.push_back(s);
        }
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

std::string
localGridJson()
{
    exp::Engine local(2);
    std::vector<exp::Job> jobs;
    for (const JobSpec &s : smallGridSpecs())
        jobs.push_back(s.toJob());
    return asJson(local.run(jobs));
}

std::vector<std::string>
gridKeys()
{
    std::vector<std::string> keys;
    for (const JobSpec &s : smallGridSpecs())
        keys.push_back(exp::jobKey(s.toJob()));
    return keys;
}

} // namespace

TEST(Replication, FanOutLandsOnExactlyTheReplicaSet)
{
    namespace fs = std::filesystem;
    ReplicaCluster fx(3, 2, "fanout");
    fx.start();

    std::vector<Endpoint> eps = fx.boundEndpoints();
    ClusterClient client(eps, 2);
    client.runJobs(smallGridSpecs());
    fx.flushReplication();

    const HashRing &ring = fx.node(0).ringView();
    std::vector<std::unique_ptr<ResultStore>> probes;
    for (std::size_t i = 0; i < fx.size(); ++i)
        probes.push_back(
            std::make_unique<ResultStore>(fx.storeDir(i)));

    for (const std::string &key : gridKeys()) {
        const auto holders = ring.ownerIndices(key, 2);
        ASSERT_EQ(holders.size(), 2u);
        ASSERT_NE(holders[0], holders[1]);
        for (std::size_t i = 0; i < fx.size(); ++i) {
            const bool holds =
                i == holders[0] || i == holders[1];
            EXPECT_EQ(fs::exists(probes[i]->recordPath(key)), holds)
                << "node " << i << " key " << key;
        }
        // The primary computed the record; the follower only ever
        // received it — the header marker tells them apart.
        EXPECT_FALSE(probes[holders[0]]->recordIsReplica(key)) << key;
        EXPECT_TRUE(probes[holders[1]]->recordIsReplica(key)) << key;
    }

    // Every fan-out push succeeded on a healthy cluster: one per key.
    EXPECT_EQ(fx.sumStat("replicas_written"), gridKeys().size());
    EXPECT_EQ(fx.sumStat("replica_push_failures"), 0u);
}

TEST(Replication, ColdRestartServesFromSurvivingReplicas)
{
    const std::string expected = localGridJson();
    ReplicaCluster fx(3, 2, "cold");
    fx.start();

    std::vector<Endpoint> eps = fx.boundEndpoints();
    {
        ClusterClient warm(eps, 2);
        EXPECT_EQ(asJson(warm.runJobs(smallGridSpecs())), expected);
    }
    fx.flushReplication();

    // Restart a node that is primary for at least one grid key, or
    // the scenario proves nothing. The ring hashes "host:port" names
    // and the ports are ephemeral, so the victim must be *looked up*,
    // not hard-coded: the primary of the first grid key always
    // qualifies.
    const std::size_t victim =
        fx.node(0).ringView().ownerIndex(gridKeys().front());

    const std::uint64_t simsBefore = fx.sumStat("simulations");
    const std::uint64_t victimSims =
        fx.nodeStats(victim).get("simulations").asU64(0);
    EXPECT_EQ(simsBefore, gridKeys().size());

    // Cold restart: the victim comes back on the same port with an
    // empty disk and an empty cache — the "replaced machine".
    fx.killNode(victim);
    fx.restartNode(victim, /*wipeStore=*/true);

    ClusterClient after(eps, 2);
    EXPECT_EQ(asJson(after.runJobs(smallGridSpecs())), expected);

    // Zero re-simulations anywhere: the victim pulled every primary
    // key it lost from a surviving replica holder (read-repair), and
    // the other nodes answered from their warm layers.
    const JsonValue nv = fx.nodeStats(victim);
    EXPECT_EQ(nv.get("simulations").asU64(99), 0u);
    EXPECT_GT(nv.get("read_repairs").asU64(0), 0u);
    EXPECT_EQ(fx.sumStat("simulations"), simsBefore - victimSims);
}

TEST(Replication, CorruptReplicaHealsThroughReSimulation)
{
    JobSpec spec;
    spec.bench = "gzip";
    spec.insts = kInsts;
    spec.warmup = kWarmup;
    const std::string key = exp::jobKey(spec.toJob());

    ReplicaCluster fx(3, 2, "heal");
    fx.start();
    const auto holders = fx.node(0).ringView().ownerIndices(key, 2);
    ASSERT_EQ(holders.size(), 2u);
    const std::size_t primary = holders[0];
    const std::size_t follower = holders[1];

    std::vector<Endpoint> eps = fx.boundEndpoints();
    const std::string expected = [&] {
        ClusterClient warm(eps, 2);
        return asJson(warm.runJobs({spec}));
    }();
    fx.flushReplication();

    // Corrupt the follower's replica record on disk, then lose the
    // primary's copy entirely (cold restart with a wiped store): no
    // valid record of the key survives anywhere.
    {
        ResultStore probe(fx.storeDir(follower));
        std::ofstream f(probe.recordPath(key), std::ios::trunc);
        f << "this is not a record\n";
    }
    fx.killNode(primary);
    fx.restartNode(primary, /*wipeStore=*/true);

    // The fetch finds only the corrupt replica (a miss, not an
    // error), so the primary re-simulates — and the fresh result
    // fans out again, healing the follower's record.
    ClusterClient after(eps, 2);
    EXPECT_EQ(asJson(after.runJobs({spec})), expected);
    fx.flushReplication();

    const JsonValue p = fx.nodeStats(primary);
    EXPECT_EQ(p.get("simulations").asU64(0), 1u);
    EXPECT_GE(p.get("replica_misses").asU64(0), 1u);

    ResultStore healed(fx.storeDir(follower));
    RunResult r;
    EXPECT_TRUE(healed.get(key, r));
    EXPECT_TRUE(healed.recordIsReplica(key));
}

TEST(Replication, ReplicateOpStoresAReplicaMarkedRecord)
{
    JobSpec spec;
    spec.bench = "mcf";
    spec.insts = kInsts;
    spec.warmup = kWarmup;
    const exp::Job job = spec.toJob();
    const std::string key = exp::jobKey(job);
    exp::Engine local(1);
    const RunResult result = local.run({job})[0];

    ReplicaCluster fx(1, 1, "proto");
    fx.start();

    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(0), err)) << err;
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(replicateRequest(key, result), resp,
                               err))
        << err;
    ASSERT_TRUE(resp.get("ok").asBool(false))
        << resp.get("detail").asString();
    EXPECT_EQ(resp.get("version").asU64(0), kProtocolVersion);

    // The record is on disk, replica-marked, and fetch returns the
    // exact bytes that were pushed.
    ResultStore probe(fx.storeDir(0));
    EXPECT_TRUE(probe.recordIsReplica(key));
    ASSERT_TRUE(conn.roundTrip(fetchRequest(key), resp, err)) << err;
    ASSERT_TRUE(resp.get("ok").asBool(false));
    std::vector<RunResult> one{result};
    EXPECT_EQ(resp.get("result").dump(), resultsToJson(one).dump());
}

TEST(Replication, ReplicateAndFetchRejectMalformedRequests)
{
    ReplicaCluster fx(1, 1, "protoerr");
    fx.start();
    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(0), err)) << err;

    // fetch of a key nobody stored: structured not_found.
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(fetchRequest("no-such-key"), resp,
                               err))
        << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "not_found");

    // fetch with an empty key: bad_request.
    ASSERT_TRUE(conn.roundTrip(fetchRequest(""), resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "bad_request");

    // replicate without a result payload: bad_request.
    JsonValue bad = JsonValue::object();
    bad.set("op", JsonValue::string("replicate"));
    bad.set("key", JsonValue::string("k"));
    stampVersion(bad, kProtocolVersion);
    ASSERT_TRUE(conn.roundTrip(bad, resp, err)) << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "bad_request");
}

TEST(Replication, ReplicateOpNeedsAPersistentStore)
{
    RunResult r;
    ReplicaCluster fx(1, 1, "");
    fx.start();
    Connection conn;
    std::string err;
    ASSERT_TRUE(conn.open(fx.endpoint(0), err)) << err;
    JsonValue resp;
    ASSERT_TRUE(conn.roundTrip(replicateRequest("k", r), resp, err))
        << err;
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "no_store");
}
