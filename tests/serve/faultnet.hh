/**
 * @file
 * faultnet: an in-process flaky TCP proxy for fault-injection tests.
 *
 * A FaultProxy listens on an ephemeral loopback port and relays every
 * accepted connection to a fixed target endpoint — by default
 * transparently, and on demand in one of several unhealthy ways:
 *
 *  - CloseOnAccept: accept, then close immediately (a crashed peer —
 *    fast, deterministic connection failure);
 *  - Blackhole: accept, swallow every byte, never answer (a network
 *    partition — only timeouts get a caller out);
 *  - Garbage: answer the first request with a non-JSON line and close
 *    (a corrupted or foreign peer);
 *  - Delay: relay normally but sit on client->target bytes for a
 *    configurable time first (a slow link);
 *  - Pass with closeAfterBytes(n): relay, then cut the connection
 *    after n target->client bytes (a mid-response crash).
 *
 * The mode is sampled when a connection is accepted and can be changed
 * at any time, so a test can break a link mid-run and heal it again.
 * severActive() additionally cuts every currently-relaying connection.
 *
 * The point of a *proxy* (rather than just killing servers): cluster
 * ring identity is a "host:port" string that configureCluster() and
 * clients treat as the connect address, so building the cluster's
 * canonical ring on proxy addresses puts faultnet on every link —
 * client-to-node and node-to-node — without the servers knowing.
 *
 * Test-support code: lives in tests/, never linked into the tools.
 */

#ifndef DCG_TESTS_SERVE_FAULTNET_HH
#define DCG_TESTS_SERVE_FAULTNET_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/endpoint.hh"

namespace dcg::serve::testing {

class FaultProxy
{
  public:
    enum class Mode {
        Pass,           ///< transparent relay
        CloseOnAccept,  ///< accept then close: fast failure
        Blackhole,      ///< accept, read, never answer: needs timeouts
        Garbage,        ///< answer with a non-JSON line, then close
        Delay,          ///< relay with delayMs on client->target bytes
    };

    /** Bind 127.0.0.1:0 and start relaying to @p target. */
    explicit FaultProxy(const Endpoint &target);
    ~FaultProxy();

    FaultProxy(const FaultProxy &) = delete;
    FaultProxy &operator=(const FaultProxy &) = delete;

    /** The proxy's own address — hand this out as the "node". */
    Endpoint address() const;

    void setMode(Mode m) { mode.store(m); }
    void setDelayMs(unsigned ms) { delayMs.store(ms); }

    /**
     * Cut each future connection after @p n target->client bytes
     * (0 = never cut, the default). Applies per connection.
     */
    void setCloseAfterBytes(std::uint64_t n) { cutAfter.store(n); }

    /** Connections accepted so far (any mode). */
    std::size_t connectionsSeen() const { return accepted.load(); }

    /** Cut every currently-relaying connection now. */
    void severActive();

  private:
    void acceptLoop();
    void serve(int clientFd, Mode m);
    void relay(int clientFd, int targetFd);

    Endpoint target;
    int listenFd = -1;
    std::uint16_t port = 0;
    std::atomic<Mode> mode{Mode::Pass};
    std::atomic<unsigned> delayMs{0};
    std::atomic<std::uint64_t> cutAfter{0};
    std::atomic<std::size_t> accepted{0};
    std::atomic<bool> stopping{false};
    std::atomic<std::uint64_t> severEpoch{0};

    std::mutex threadsMutex;
    std::vector<std::thread> threads;  ///< per-connection relays
    std::thread acceptor;
};

} // namespace dcg::serve::testing

#endif // DCG_TESTS_SERVE_FAULTNET_HH
