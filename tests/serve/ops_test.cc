/**
 * Op-handler registry tests: the string-keyed catalog that replaced
 * the server's verb chain. Covers the catalog surface, the structured
 * unknown-op rejection (which must name the catalog), the stats `ops`
 * listing, and minimum-version enforcement for v5 verbs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "serve/ops.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace dcg;
using namespace dcg::serve;

namespace {

/** One bound, running server on an ephemeral port. */
class OneServer
{
  public:
    OneServer()
    {
        ServerConfig cfg;
        cfg.host = "127.0.0.1";
        cfg.port = 0;
        cfg.workers = 1;
        server = std::make_unique<Server>(cfg);
        thread = std::thread([&srv = *server] { srv.run(); });
    }

    ~OneServer()
    {
        server->requestStop();
        thread.join();
    }

    Endpoint endpoint() const
    {
        return Endpoint{"127.0.0.1", server->port()};
    }

    /** Raw exchange at an explicit envelope version (0 = unstamped). */
    JsonValue exchange(JsonValue req, unsigned version)
    {
        Connection conn;
        std::string err;
        if (!conn.open(endpoint(), err))
            fatal("ops_test exchange: ", err);
        if (version)
            stampVersion(req, version);
        JsonValue resp;
        if (!conn.roundTrip(req, resp, err))
            fatal("ops_test exchange: ", err);
        return resp;
    }

  private:
    std::unique_ptr<Server> server;
    std::thread thread;
};

JsonValue
opRequest(const std::string &op)
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string(op));
    return req;
}

} // namespace

TEST(OpRegistry, CatalogNamesEveryVerb)
{
    const std::vector<std::string> expected = {
        "compact", "epoch",  "fetch",     "join",  "leave", "replicate",
        "result",  "ring",   "shutdown",  "stats", "status", "submit"};
    std::vector<std::string> names = opNames();
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names, expected);

    for (const OpInfo &info : opCatalog()) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_TRUE(isOp(info.name));
        EXPECT_EQ(findOp(info.name)->minVersion, info.minVersion);
    }
    EXPECT_FALSE(isOp("no-such-verb"));
    EXPECT_EQ(findOp("no-such-verb"), nullptr);

    // The membership verbs are v5; the historic surface predates
    // version gating.
    EXPECT_EQ(findOp("join")->minVersion, 5u);
    EXPECT_EQ(findOp("leave")->minVersion, 5u);
    EXPECT_EQ(findOp("ring")->minVersion, 5u);
    EXPECT_EQ(findOp("epoch")->minVersion, 5u);
    EXPECT_EQ(findOp("submit")->minVersion, 1u);

    // Admin verbs are flagged as such.
    EXPECT_TRUE(findOp("shutdown")->adminOnly);
    EXPECT_TRUE(findOp("join")->adminOnly);
    EXPECT_TRUE(findOp("leave")->adminOnly);
    EXPECT_FALSE(findOp("submit")->adminOnly);
    EXPECT_FALSE(findOp("epoch")->adminOnly);
}

TEST(OpRegistry, UnknownOpNamesTheCatalog)
{
    OneServer srv;
    const JsonValue resp =
        srv.exchange(opRequest("frobnicate"), kProtocolVersion);
    EXPECT_FALSE(resp.get("ok").asBool(true));
    EXPECT_EQ(resp.get("error").asString(), "bad_request");
    const std::string detail = resp.get("detail").asString();
    EXPECT_NE(detail.find("frobnicate"), std::string::npos) << detail;
    // The rejection lists what IS understood.
    for (const char *known : {"submit", "join", "ring", "stats"})
        EXPECT_NE(detail.find(known), std::string::npos)
            << detail << " missing " << known;
}

TEST(OpRegistry, StatsListsTheOps)
{
    OneServer srv;
    const JsonValue resp =
        srv.exchange(opRequest("stats"), kProtocolVersion);
    ASSERT_TRUE(resp.get("ok").asBool(false)) << resp.dump();
    const JsonValue &ops = resp.get("stats").get("ops");
    ASSERT_TRUE(ops.isArray());
    EXPECT_EQ(ops.items().size(), opCatalog().size());
    bool sawJoin = false;
    for (const JsonValue &o : ops.items()) {
        EXPECT_FALSE(o.get("name").asString().empty());
        EXPECT_GE(o.get("min_version").asU64(0), 1u);
        if (o.get("name").asString() == "join") {
            sawJoin = true;
            EXPECT_EQ(o.get("min_version").asU64(0), 5u);
            EXPECT_TRUE(o.get("admin").asBool(false));
        }
    }
    EXPECT_TRUE(sawJoin);
}

TEST(OpRegistry, V5VerbRejectedOnOldEnvelope)
{
    OneServer srv;
    for (const unsigned version : {0u, 1u, 4u}) {
        JsonValue req = opRequest("ring");
        const JsonValue resp = srv.exchange(req, version);
        EXPECT_FALSE(resp.get("ok").asBool(true));
        EXPECT_EQ(resp.get("error").asString(), "version_too_low")
            << "version " << version << ": " << resp.dump();
        EXPECT_EQ(resp.get("min_version").asU64(0), 5u);
    }
    // The historic verbs keep answering unversioned requests.
    const JsonValue stats = srv.exchange(opRequest("stats"), 0);
    EXPECT_TRUE(stats.get("ok").asBool(false)) << stats.dump();
}
