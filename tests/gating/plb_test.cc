/** Tests for the Pipeline Balancing controller. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "gating/plb.hh"
#include "pipeline/core.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

/** Drive the controller with a fixed per-cycle issue count. */
void
feedWindows(PlbController &ctl, Core &core, unsigned issued_per_cycle,
            unsigned windows, unsigned window_cycles = 256)
{
    CycleActivity act;
    act.issued = static_cast<std::uint8_t>(issued_per_cycle);
    for (unsigned w = 0; w < windows; ++w) {
        for (unsigned c = 0; c < window_cycles; ++c) {
            ctl.beginCycle(core);
            ctl.gates(act);
        }
    }
}

struct Rig
{
    explicit Rig(PlbConfig pc = PlbConfig{})
        : gen(profileByName("gzip"), 1),
          mem(HierarchyConfig{}, stats),
          bpred(BranchPredictorConfig{}, stats),
          core(CoreConfig{}, gen, mem, bpred, stats),
          ctl(CoreConfig{}, pc, stats)
    {
    }

    StatRegistry stats;
    TraceGenerator gen;
    MemoryHierarchy mem;
    BranchPredictor bpred;
    Core core;
    PlbController ctl;
};

} // namespace

TEST(Plb, StartsInNormalMode)
{
    Rig rig;
    EXPECT_EQ(rig.ctl.mode(), 8u);
}

TEST(Plb, HighIpcStaysWide)
{
    Rig rig;
    feedWindows(rig.ctl, rig.core, 6, 10);
    EXPECT_EQ(rig.ctl.mode(), 8u);
    EXPECT_EQ(rig.core.issueWidthLimit(), 8u);
}

TEST(Plb, LowIpcNarrowsAfterConfirmation)
{
    Rig rig;
    // One low window is not enough (mode history damping)...
    feedWindows(rig.ctl, rig.core, 1, 1);
    rig.ctl.beginCycle(rig.core);  // boundary processing
    EXPECT_EQ(rig.ctl.mode(), 8u);
    // ...two consecutive low windows confirm the transition.
    feedWindows(rig.ctl, rig.core, 1, 2);
    EXPECT_EQ(rig.ctl.mode(), 4u);
    EXPECT_EQ(rig.core.issueWidthLimit(), 4u);
}

TEST(Plb, MidIpcSelectsSixWide)
{
    Rig rig;
    feedWindows(rig.ctl, rig.core, 2, 4);
    EXPECT_EQ(rig.ctl.mode(), 6u);
    EXPECT_EQ(rig.core.issueWidthLimit(), 6u);
    EXPECT_EQ(rig.core.fuPool().enabledCount(FuType::IntAluUnit), 5u);
    EXPECT_EQ(rig.core.fuPool().enabledCount(FuType::FpAluUnit), 3u);
    // Sec 4.3: cache ports are left intact in 6-wide mode.
    EXPECT_EQ(rig.core.dcachePortLimit(), 2u);
}

TEST(Plb, WidensImmediatelyOnHighIpc)
{
    Rig rig;
    feedWindows(rig.ctl, rig.core, 1, 4);
    ASSERT_EQ(rig.ctl.mode(), 4u);
    feedWindows(rig.ctl, rig.core, 7, 1);
    rig.ctl.beginCycle(rig.core);
    EXPECT_EQ(rig.ctl.mode(), 8u);
}

TEST(Plb, FourWideDisablesTable43Resources)
{
    Rig rig;
    feedWindows(rig.ctl, rig.core, 1, 4);
    ASSERT_EQ(rig.ctl.mode(), 4u);
    EXPECT_EQ(rig.core.fuPool().enabledCount(FuType::IntAluUnit), 3u);
    EXPECT_EQ(rig.core.fuPool().enabledCount(FuType::IntMulDivUnit), 1u);
    EXPECT_EQ(rig.core.fuPool().enabledCount(FuType::FpAluUnit), 2u);
    EXPECT_EQ(rig.core.fuPool().enabledCount(FuType::FpMulDivUnit), 2u);
    // PLB-orig keeps both cache ports even in 4-wide mode.
    EXPECT_EQ(rig.core.dcachePortLimit(), 2u);
}

TEST(Plb, ExtendedVariantDropsPortAndBuses)
{
    PlbConfig pc;
    pc.extended = true;
    Rig rig(pc);
    feedWindows(rig.ctl, rig.core, 1, 4);
    ASSERT_EQ(rig.ctl.mode(), 4u);
    EXPECT_EQ(rig.core.dcachePortLimit(), 1u);
    EXPECT_EQ(rig.core.resultBusLimit(), 4u);
}

TEST(Plb, FpGuardPreventsFourWide)
{
    Rig rig;
    CycleActivity act;
    act.issued = 1;
    act.fpIssued = 1;  // heavy FP traffic relative to the guard
    for (unsigned w = 0; w < 5; ++w) {
        for (unsigned c = 0; c < 256; ++c) {
            rig.ctl.beginCycle(rig.core);
            rig.ctl.gates(act);
        }
    }
    EXPECT_EQ(rig.ctl.mode(), 6u);  // held at 6-wide by the FP trigger
}

TEST(Plb, GatesDisabledUnitsAndIqSlice)
{
    Rig rig;
    feedWindows(rig.ctl, rig.core, 1, 4);
    ASSERT_EQ(rig.ctl.mode(), 4u);
    CycleActivity idle;
    const GateState g = rig.ctl.gates(idle);
    // 4-wide: int ALUs 3..5 gated.
    EXPECT_EQ(g.fuGateMask[static_cast<unsigned>(FuType::IntAluUnit)],
              0b111000u);
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 0.5);
    // PLB-orig does not gate latches or buses.
    for (unsigned p = 0; p < kNumLatchPhases; ++p)
        EXPECT_EQ(g.latchSlotsGated[p], 0u);
    EXPECT_EQ(g.resultBusesGated, 0u);
}

TEST(Plb, ExtGatesLatchesPortsBuses)
{
    PlbConfig pc;
    pc.extended = true;
    Rig rig(pc);
    feedWindows(rig.ctl, rig.core, 1, 4);
    ASSERT_EQ(rig.ctl.mode(), 4u);
    CycleActivity idle;
    const GateState g = rig.ctl.gates(idle);
    for (unsigned p = 0; p < kNumLatchPhases; ++p)
        EXPECT_EQ(g.latchSlotsGated[p], 4u);  // 8 - 4
    EXPECT_EQ(g.dcachePortsGated, 1u);
    EXPECT_EQ(g.resultBusesGated, 4u);
}

TEST(Plb, NeverGatesBusyUnitsEvenWhenDisabled)
{
    PlbConfig pc;
    pc.extended = true;
    Rig rig(pc);
    feedWindows(rig.ctl, rig.core, 1, 4);
    ASSERT_EQ(rig.ctl.mode(), 4u);
    // A disabled unit still draining a pre-switch op must not be gated.
    CycleActivity act;
    act.fuBusyMask[static_cast<unsigned>(FuType::IntAluUnit)] = 0b100000;
    act.latchFlux[5] = 6;
    act.resultBusUsed = 6;
    const GateState g = rig.ctl.gates(act);
    EXPECT_EQ(g.fuGateMask[static_cast<unsigned>(FuType::IntAluUnit)] &
              0b100000u, 0u);
    EXPECT_LE(g.latchSlotsGated[5] + act.latchFlux[5], 8u);
    EXPECT_LE(g.resultBusesGated + act.resultBusUsed, 8u);
}

TEST(Plb, WindowAndTransitionStatsWired)
{
    Rig rig;
    feedWindows(rig.ctl, rig.core, 1, 4);
    feedWindows(rig.ctl, rig.core, 7, 2);
    EXPECT_GT(rig.stats.lookup("plb.windows_4wide"), 0.0);
    EXPECT_GT(rig.stats.lookup("plb.windows_8wide"), 0.0);
    EXPECT_GE(rig.stats.lookup("plb.mode_transitions"), 2.0);
}

TEST(Plb, NamesDistinguishVariants)
{
    StatRegistry s1, s2;
    PlbConfig orig, ext;
    ext.extended = true;
    PlbController a(CoreConfig{}, orig, s1);
    PlbController b(CoreConfig{}, ext, s2);
    EXPECT_STREQ(a.name(), "plb-orig");
    EXPECT_STREQ(b.name(), "plb-ext");
}
