/** Tests for the Deterministic Clock Gating controller. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "gating/dcg.hh"
#include "pipeline/core.hh"
#include "power/model.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

struct SimRig
{
    explicit SimRig(const std::string &bench, std::uint64_t seed = 1)
        : gen(profileByName(bench), seed),
          mem(HierarchyConfig{}, stats),
          bpred(BranchPredictorConfig{}, stats),
          core(CoreConfig{}, gen, mem, bpred, stats),
          controller(CoreConfig{}, DcgConfig{}, stats)
    {
    }

    StatRegistry stats;
    TraceGenerator gen;
    MemoryHierarchy mem;
    BranchPredictor bpred;
    Core core;
    DcgController controller;
};

} // namespace

TEST(Dcg, NeverGatesAUsedResource)
{
    // The defining property (Sec 1): DCG "guarantees no performance
    // loss" because gated blocks are known-unused. Checked per cycle
    // across a mixed workload.
    SimRig rig("twolf");
    const CoreConfig cfg;
    for (int i = 0; i < 30000; ++i) {
        rig.core.tick();
        const CycleActivity &act = rig.core.activity();
        const GateState g = rig.controller.gates(act);
        for (unsigned t = 0; t < kNumFuTypes; ++t)
            ASSERT_EQ(g.fuGateMask[t] & act.fuBusyMask[t], 0u);
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            ASSERT_LE(g.latchSlotsGated[p] + act.latchFlux[p],
                      cfg.issueWidth);
        ASSERT_LE(g.dcachePortsGated + act.dcachePortsUsed,
                  cfg.dcachePorts);
        ASSERT_LE(g.resultBusesGated + act.resultBusUsed,
                  cfg.numResultBuses);
    }
}

TEST(Dcg, GatesEverythingUnused)
{
    // Complementary property: DCG has no lost opportunity on the
    // blocks it manages (Sec 1, advantage (1)).
    SimRig rig("gzip");
    const CoreConfig cfg;
    for (int i = 0; i < 10000; ++i) {
        rig.core.tick();
        const CycleActivity &act = rig.core.activity();
        const GateState g = rig.controller.gates(act);
        for (unsigned t = 0; t < kNumFuTypes; ++t) {
            const std::uint16_t all =
                static_cast<std::uint16_t>((1u << cfg.fuCount[t]) - 1);
            ASSERT_EQ(g.fuGateMask[t] | act.fuBusyMask[t], all);
        }
        ASSERT_EQ(g.dcachePortsGated + act.dcachePortsUsed,
                  cfg.dcachePorts);
        ASSERT_EQ(g.resultBusesGated + act.resultBusUsed,
                  cfg.numResultBuses);
    }
}

TEST(Dcg, UngateablePhasesAreLeftAlone)
{
    SimRig rig("gzip");
    for (int i = 0; i < 5000; ++i) {
        rig.core.tick();
        const GateState g = rig.controller.gates(rig.core.activity());
        EXPECT_EQ(g.latchSlotsGated[static_cast<unsigned>(
            LatchPhase::FetchOut)], 0u);
        EXPECT_EQ(g.latchSlotsGated[static_cast<unsigned>(
            LatchPhase::DecodeOut)], 0u);
        EXPECT_EQ(g.latchSlotsGated[static_cast<unsigned>(
            LatchPhase::IssueOut)], 0u);
    }
}

TEST(Dcg, DoesNotTouchIssueQueue)
{
    // Sec 2.2.2: DCG leaves the issue queue to [6]'s scheme.
    SimRig rig("gzip");
    rig.core.tick();
    const GateState g = rig.controller.gates(rig.core.activity());
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 0.0);
}

TEST(Dcg, ControlOverheadAlwaysCharged)
{
    SimRig rig("gzip");
    rig.core.tick();
    EXPECT_TRUE(rig.controller.gates(rig.core.activity())
                    .dcgControlActive);
}

TEST(Dcg, ConfigDisablesComponentClasses)
{
    StatRegistry stats;
    DcgConfig cfg;
    cfg.gateExecUnits = false;
    cfg.gateResultBus = false;
    DcgController ctl(CoreConfig{}, cfg, stats);
    const GateState g = ctl.gates(CycleActivity{});
    for (unsigned t = 0; t < kNumFuTypes; ++t)
        EXPECT_EQ(g.fuGateMask[t], 0u);
    EXPECT_EQ(g.resultBusesGated, 0u);
    // Latches and D-cache still gated.
    EXPECT_GT(g.latchSlotsGated[static_cast<unsigned>(
        LatchPhase::ExecOut)], 0u);
    EXPECT_EQ(g.dcachePortsGated, CoreConfig{}.dcachePorts);
}

TEST(Dcg, ZeroPerformanceImpact)
{
    // Bit-exact IPC: DCG observes the pipeline but never stalls it.
    SimRig with_dcg("parser", 3);
    SimRig without("parser", 3);
    PowerModel pm(CoreConfig{}, Technology{}, with_dcg.stats);
    for (int i = 0; i < 40000; ++i) {
        with_dcg.core.tick();
        pm.tick(with_dcg.core.activity(),
                with_dcg.controller.gates(with_dcg.core.activity()));
        without.core.tick();
    }
    EXPECT_EQ(with_dcg.core.committedInsts(),
              without.core.committedInsts());
}

TEST(Dcg, SequentialPriorityTogglesLessThanRoundRobin)
{
    // Sec 3.1: the sequential priority policy exists to keep the
    // gate-control from toggling.
    const Profile p = profileByName("gzip");

    auto measure = [&](bool seq) {
        StatRegistry stats;
        TraceGenerator gen(p, 7);
        MemoryHierarchy mem(HierarchyConfig{}, stats);
        BranchPredictor bp(BranchPredictorConfig{}, stats);
        CoreConfig cc;
        cc.sequentialPriority = seq;
        Core core(cc, gen, mem, bp, stats);
        DcgController ctl(cc, DcgConfig{}, stats);
        for (int i = 0; i < 30000; ++i) {
            core.tick();
            ctl.gates(core.activity());
        }
        return ctl.fuToggles(FuType::IntAluUnit);
    };

    const auto seq_toggles = measure(true);
    const auto rr_toggles = measure(false);
    EXPECT_LT(seq_toggles, rr_toggles);
}

TEST(Dcg, GatedCycleCountersAccumulate)
{
    SimRig rig("mcf");  // mostly idle machine -> lots of gating
    for (int i = 0; i < 5000; ++i) {
        rig.core.tick();
        rig.controller.gates(rig.core.activity());
    }
    EXPECT_GT(rig.stats.lookup("dcg.gated_fu_cycles"), 1000.0);
    EXPECT_GT(rig.stats.lookup("dcg.gated_latch_slots"), 1000.0);
    EXPECT_GT(rig.stats.lookup("dcg.gated_dcache_ports"), 1000.0);
    EXPECT_GT(rig.stats.lookup("dcg.gated_result_buses"), 1000.0);
}

TEST(Dcg, IssueQueueExtensionGatesEmptyEntries)
{
    // Extension per [6] (Sec 2.2.2): empty window entries' wakeup
    // slices are deterministically gateable.
    StatRegistry stats;
    DcgConfig cfg;
    cfg.gateIssueQueue = true;
    DcgController ctl(CoreConfig{}, cfg, stats);

    CycleActivity act;
    act.iqOccupied = 40;
    const GateState g = ctl.gates(act);
    // 128-entry window, 40 occupied + 8 rename-width guard = 48.
    EXPECT_NEAR(g.iqGatedFraction, (128.0 - 48.0) / 128.0, 1e-9);
}

TEST(Dcg, IssueQueueExtensionNeverGatesOccupied)
{
    StatRegistry stats;
    DcgConfig cfg;
    cfg.gateIssueQueue = true;
    DcgController ctl(CoreConfig{}, cfg, stats);
    CycleActivity act;
    act.iqOccupied = 128;  // full window
    const GateState g = ctl.gates(act);
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 0.0);
}

TEST(Dcg, IssueQueueExtensionKeepsZeroLoss)
{
    SimRig a("equake", 9);
    SimRig b("equake", 9);
    StatRegistry s2;
    DcgConfig iq_cfg;
    iq_cfg.gateIssueQueue = true;
    DcgController iq_ctl(CoreConfig{}, iq_cfg, s2);
    PowerModel pm_a(CoreConfig{}, Technology{}, a.stats);
    PowerModel pm_b(CoreConfig{}, Technology{}, s2);
    for (int i = 0; i < 30000; ++i) {
        a.core.tick();
        pm_a.tick(a.core.activity(), a.controller.gates(a.core.activity()));
        b.core.tick();
        pm_b.tick(b.core.activity(), iq_ctl.gates(b.core.activity()));
    }
    EXPECT_EQ(a.core.committedInsts(), b.core.committedInsts());
    // The combination saves strictly more energy.
    EXPECT_LT(pm_b.totalEnergyPJ(), pm_a.totalEnergyPJ());
}
