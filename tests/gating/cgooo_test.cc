/** Tests for the CG-OoO coarse-grain issue-queue gating controller. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "gating/cgooo.hh"
#include "pipeline/core.hh"
#include "power/model.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

CgoooController
makeController(StatRegistry &stats, CgoooConfig cfg = {})
{
    return CgoooController(CoreConfig{}, cfg, stats);
}

} // namespace

TEST(Cgooo, BlockCountFollowsOccupancy)
{
    // 128-entry window / 16-entry blocks = 8 blocks; the rename-width
    // reserve (8 entries) keeps this cycle's arrivals un-gated.
    StatRegistry stats;
    CgoooController ctl = makeController(stats);

    CycleActivity act;
    act.iqOccupied = 0;
    GateState g = ctl.gates(act);
    // 0 + 8 reserve -> 1 active block of 8.
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 7.0 / 8.0);
    EXPECT_DOUBLE_EQ(g.iqWakeupScale, 1.0 / 8.0);

    act.iqOccupied = 40;
    g = ctl.gates(act);
    // 40 + 8 = 48 entries -> 3 active blocks.
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(g.iqWakeupScale, 3.0 / 8.0);

    act.iqOccupied = 128;  // full window: nothing gateable
    g = ctl.gates(act);
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(g.iqWakeupScale, 1.0);
}

TEST(Cgooo, NeverGatesAResidentBlock)
{
    // Determinism invariant, block flavour: the active-block count
    // always covers occupancy plus a full rename group, so a gated
    // block can hold neither a resident nor one of this cycle's
    // arrivals.
    StatRegistry stats;
    CgoooController ctl = makeController(stats);
    const CoreConfig cfg;
    for (unsigned occ = 0; occ <= cfg.windowSize; ++occ) {
        CycleActivity act;
        act.iqOccupied = occ;
        const GateState g = ctl.gates(act);
        const double active_frac = 1.0 - g.iqGatedFraction;
        const double covered = active_frac * cfg.windowSize;
        EXPECT_GE(covered + 1e-9,
                  std::min(occ + cfg.renameWidth, cfg.windowSize))
            << "occupancy " << occ;
    }
}

TEST(Cgooo, SchedulerOverheadScalesWithActiveBlocks)
{
    StatRegistry stats;
    CgoooConfig cfg;
    cfg.schedOverhead = 0.10;
    CgoooController ctl = makeController(stats, cfg);

    CycleActivity act;
    act.iqOccupied = 0;
    EXPECT_DOUBLE_EQ(ctl.gates(act).iqSchedOverhead, 0.10 / 8.0);
    act.iqOccupied = 128;
    EXPECT_DOUBLE_EQ(ctl.gates(act).iqSchedOverhead, 0.10);
}

TEST(Cgooo, LeavesEverythingOutsideTheQueueAlone)
{
    StatRegistry stats;
    CgoooController ctl = makeController(stats);
    CycleActivity act;
    act.iqOccupied = 40;
    const GateState g = ctl.gates(act);
    for (unsigned t = 0; t < kNumFuTypes; ++t)
        EXPECT_EQ(g.fuGateMask[t], 0u);
    for (unsigned p = 0; p < kNumLatchPhases; ++p)
        EXPECT_EQ(g.latchSlotsGated[p], 0u);
    EXPECT_EQ(g.dcachePortsGated, 0u);
    EXPECT_EQ(g.resultBusesGated, 0u);
    EXPECT_FALSE(g.dcgControlActive);
}

TEST(Cgooo, BlockSizeChangesGranularity)
{
    StatRegistry stats;
    CgoooConfig fine;
    fine.blockSize = 8;  // 16 blocks
    CgoooController ctl = makeController(stats, fine);
    CycleActivity act;
    act.iqOccupied = 40;  // + 8 reserve = 48 -> 6 of 16 blocks
    const GateState g = ctl.gates(act);
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 10.0 / 16.0);
}

TEST(Cgooo, ZeroPerformanceImpactAndIqSavings)
{
    // Block gating observes occupancy without stalling the pipeline,
    // and the wakeup/clock savings beat the per-block scheduler cost
    // on a real workload (the queue is rarely full).
    const Profile p = profileByName("gzip");

    auto run = [&](bool gate, std::uint64_t &committed) {
        StatRegistry stats;
        TraceGenerator gen(p, 5);
        MemoryHierarchy mem(HierarchyConfig{}, stats);
        BranchPredictor bp(BranchPredictorConfig{}, stats);
        Core core(CoreConfig{}, gen, mem, bp, stats);
        CgoooController ctl(CoreConfig{}, CgoooConfig{}, stats);
        PowerModel pm(CoreConfig{}, Technology{}, stats);
        for (int i = 0; i < 30000; ++i) {
            core.tick();
            pm.tick(core.activity(),
                    gate ? ctl.gates(core.activity()) : GateState{});
        }
        committed = core.committedInsts();
        return pm.totalEnergyPJ();
    };

    std::uint64_t with_commits = 0, without_commits = 0;
    const double with = run(true, with_commits);
    const double without = run(false, without_commits);
    EXPECT_EQ(with_commits, without_commits);
    EXPECT_LT(with, without);
}

TEST(Cgooo, BlockCountersAccumulate)
{
    StatRegistry stats;
    CgoooController ctl = makeController(stats);
    CycleActivity act;
    act.iqOccupied = 40;
    for (int i = 0; i < 100; ++i)
        ctl.gates(act);
    EXPECT_DOUBLE_EQ(stats.lookup("cgooo.active_blocks"), 300.0);
    EXPECT_DOUBLE_EQ(stats.lookup("cgooo.gated_blocks"), 500.0);
}
