/** Tests for the Data-Driven Clock Gating controller. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "gating/ddcg.hh"
#include "pipeline/core.hh"
#include "power/model.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

struct DdcgRig
{
    explicit DdcgRig(const std::string &bench, DdcgConfig cfg = {},
                     std::uint64_t seed = 1)
        : gen(profileByName(bench), seed),
          mem(HierarchyConfig{}, stats),
          bpred(BranchPredictorConfig{}, stats),
          core(CoreConfig{}, gen, mem, bpred, stats),
          controller(CoreConfig{}, cfg, stats)
    {
    }

    StatRegistry stats;
    TraceGenerator gen;
    MemoryHierarchy mem;
    BranchPredictor bpred;
    Core core;
    DdcgController controller;
};

} // namespace

TEST(Ddcg, NeverGatesAUsedSlot)
{
    // The determinism invariant, DDCG flavour: a slot is gated only
    // when it has zero flux (D == Q on every bit), so gated + used can
    // never exceed the machine width in any phase.
    DdcgRig rig("twolf");
    const CoreConfig cfg;
    for (int i = 0; i < 30000; ++i) {
        rig.core.tick();
        const CycleActivity &act = rig.core.activity();
        const GateState g = rig.controller.gates(act);
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            ASSERT_LE(g.latchSlotsGated[p] + act.latchFlux[p],
                      cfg.issueWidth);
    }
}

TEST(Ddcg, GatesEveryIdleSlotInEveryPhase)
{
    // Unlike DCG, the comparator needs no advance notice, so even the
    // front-end phases gate exactly width - flux slots.
    DdcgRig rig("gzip");
    const CoreConfig cfg;
    for (int i = 0; i < 10000; ++i) {
        rig.core.tick();
        const CycleActivity &act = rig.core.activity();
        const GateState g = rig.controller.gates(act);
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            ASSERT_EQ(g.latchSlotsGated[p] + act.latchFlux[p],
                      cfg.issueWidth);
    }
}

TEST(Ddcg, RestrictedModeMatchesDcgPhases)
{
    DdcgConfig cfg;
    cfg.gateAllPhases = false;
    DdcgRig rig("gzip", cfg);
    for (int i = 0; i < 5000; ++i) {
        rig.core.tick();
        const GateState g = rig.controller.gates(rig.core.activity());
        for (unsigned p = 0; p < kNumLatchPhases; ++p) {
            if (!latchPhaseGateable(static_cast<LatchPhase>(p)))
                EXPECT_EQ(g.latchSlotsGated[p], 0u);
        }
    }
}

TEST(Ddcg, ChargesComparatorAndBitGating)
{
    DdcgRig rig("gzip");
    rig.core.tick();
    const GateState g = rig.controller.gates(rig.core.activity());
    EXPECT_DOUBLE_EQ(g.latchBitGatedFraction, 1.0 - 0.45);
    EXPECT_DOUBLE_EQ(g.latchCompareOverhead, 0.08);
    // DDCG is a latch-only scheme: everything else sees base clocks.
    for (unsigned t = 0; t < kNumFuTypes; ++t)
        EXPECT_EQ(g.fuGateMask[t], 0u);
    EXPECT_EQ(g.dcachePortsGated, 0u);
    EXPECT_EQ(g.resultBusesGated, 0u);
    EXPECT_DOUBLE_EQ(g.iqGatedFraction, 0.0);
    EXPECT_FALSE(g.dcgControlActive);
}

TEST(Ddcg, ZeroPerformanceImpact)
{
    // Like DCG, the comparators observe the datapath without stalling
    // it: committed-instruction counts are bit-exact with and without.
    DdcgRig with_ddcg("parser", DdcgConfig{}, 3);
    DdcgRig without("parser", DdcgConfig{}, 3);
    PowerModel pm(CoreConfig{}, Technology{}, with_ddcg.stats);
    for (int i = 0; i < 40000; ++i) {
        with_ddcg.core.tick();
        pm.tick(with_ddcg.core.activity(),
                with_ddcg.controller.gates(with_ddcg.core.activity()));
        without.core.tick();
    }
    EXPECT_EQ(with_ddcg.core.committedInsts(),
              without.core.committedInsts());
}

TEST(Ddcg, SavesLatchEnergyNetOfComparators)
{
    // The headline claim: slot- plus bit-level gating buys more than
    // the per-bit comparators cost, with the defaults.
    const Profile p = profileByName("gzip");

    auto run = [&](bool ddcg) {
        StatRegistry stats;
        TraceGenerator gen(p, 5);
        MemoryHierarchy mem(HierarchyConfig{}, stats);
        BranchPredictor bp(BranchPredictorConfig{}, stats);
        Core core(CoreConfig{}, gen, mem, bp, stats);
        DdcgController ctl(CoreConfig{}, DdcgConfig{}, stats);
        PowerModel pm(CoreConfig{}, Technology{}, stats);
        for (int i = 0; i < 30000; ++i) {
            core.tick();
            pm.tick(core.activity(),
                    ddcg ? ctl.gates(core.activity()) : GateState{});
        }
        return pm.totalEnergyPJ();
    };

    EXPECT_LT(run(true), run(false));
}

TEST(Ddcg, SlotCountersAccumulate)
{
    DdcgRig rig("mcf");  // mostly idle machine -> lots of gating
    for (int i = 0; i < 5000; ++i) {
        rig.core.tick();
        rig.controller.gates(rig.core.activity());
    }
    EXPECT_GT(rig.stats.lookup("ddcg.gated_latch_slots"), 1000.0);
    EXPECT_GT(rig.stats.lookup("ddcg.clocked_latch_slots"), 0.0);
}
