/** Tests for the gating-scheme registry and its catalog surface. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gating/policy.hh"
#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/simulator.hh"

using namespace dcg;
using namespace dcg::gating;

TEST(Registry, CatalogHoldsAllBuiltinSchemes)
{
    const auto names = schemeNames();
    for (const char *expected :
         {"base", "cgooo", "dcg", "ddcg", "plb-ext", "plb-orig"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_GE(names.size(), 6u);
}

TEST(Registry, CatalogIsSortedAndUnique)
{
    // Deterministic enumeration order is what makes catalog-driven
    // sweeps (custom_workload, the CI scheme matrix) byte-stable.
    const auto names = schemeNames();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());

    const auto catalog = schemeCatalog();
    ASSERT_EQ(catalog.size(), names.size());
    for (std::size_t i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(catalog[i].name, names[i]);
}

TEST(Registry, EveryEntryCarriesDescriptionAndLookups)
{
    for (const SchemeInfo &info : schemeCatalog()) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_TRUE(isScheme(info.name));
        const SchemeInfo *found = findScheme(info.name);
        ASSERT_NE(found, nullptr) << info.name;
        EXPECT_EQ(found->name, info.name);
        EXPECT_EQ(found->knobs.size(), info.knobs.size());
        for (const SchemeKnob &knob : info.knobs) {
            EXPECT_FALSE(knob.name.empty()) << info.name;
            EXPECT_FALSE(knob.description.empty()) << info.name;
            EXPECT_FALSE(knob.defaultValue.empty()) << info.name;
        }
    }
}

TEST(Registry, UnknownNamesAreRejected)
{
    EXPECT_FALSE(isScheme("warp"));
    EXPECT_FALSE(isScheme(""));
    EXPECT_FALSE(isScheme("DCG"));  // case-sensitive
    EXPECT_EQ(findScheme("warp"), nullptr);
}

TEST(Registry, JoinedNamesMatchCatalogOrder)
{
    std::string expected;
    for (const std::string &name : schemeNames()) {
        if (!expected.empty())
            expected += '|';
        expected += name;
    }
    EXPECT_EQ(schemeNamesJoined(), expected);

    std::string commas = schemeNamesJoined(',');
    EXPECT_NE(commas.find("base,"), std::string::npos);
    EXPECT_EQ(commas.find('|'), std::string::npos);
}

TEST(Registry, FactoriesBuildPoliciesNamedAfterTheirKey)
{
    for (const std::string &name : schemeNames()) {
        SimConfig cfg = table1Config(name);
        StatRegistry stats;
        const auto policy = makePolicy(cfg, stats);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(std::string(policy->name()), name);
    }
}
