/** Tests for the gem5-style logging/termination helpers. */

#include <gtest/gtest.h>

#include "common/log.hh"

using namespace dcg;

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 42, " broken"), "invariant 42");
}

TEST(Log, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config: ", "x"),
                ::testing::ExitedWithCode(1), "bad config: x");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    warn("just a warning ", 1);
    inform("status ", 2.5);
    SUCCEED();
}

TEST(Log, AssertPassesOnTrue)
{
    DCG_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Log, AssertDiesWithLocationAndMessage)
{
    EXPECT_DEATH(DCG_ASSERT(false, "context ", 7),
                 "assertion.*failed.*context 7");
}
