/** Tests for the command-line option helper. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/options.hh"

using namespace dcg;

namespace {

Options
parse(std::vector<const char *> args, std::set<std::string> known)
{
    args.insert(args.begin(), "prog");
    return Options(static_cast<int>(args.size()),
                   const_cast<char **>(args.data()), known);
}

} // namespace

TEST(Options, ParsesKeyValue)
{
    Options o = parse({"--bench=mcf", "--insts=5000"}, {"bench", "insts"});
    EXPECT_EQ(o.getString("bench", ""), "mcf");
    EXPECT_EQ(o.getInt("insts", 0), 5000);
}

TEST(Options, BareFlagIsTrue)
{
    Options o = parse({"--verbose"}, {"verbose"});
    EXPECT_TRUE(o.has("verbose"));
    EXPECT_TRUE(o.getBool("verbose", false));
}

TEST(Options, DefaultsWhenAbsent)
{
    Options o = parse({}, {"x"});
    EXPECT_EQ(o.getString("x", "d"), "d");
    EXPECT_EQ(o.getInt("x", 7), 7);
    EXPECT_DOUBLE_EQ(o.getDouble("x", 1.5), 1.5);
    EXPECT_TRUE(o.getBool("x", true));
}

TEST(Options, DoubleParsing)
{
    Options o = parse({"--scale=2.5"}, {"scale"});
    EXPECT_DOUBLE_EQ(o.getDouble("scale", 0.0), 2.5);
}

TEST(Options, BoolFalseSpellings)
{
    Options o = parse({"--a=0", "--b=false", "--c=1"}, {"a", "b", "c"});
    EXPECT_FALSE(o.getBool("a", true));
    EXPECT_FALSE(o.getBool("b", true));
    EXPECT_TRUE(o.getBool("c", false));
}

TEST(Options, UnknownKeyIsFatal)
{
    EXPECT_EXIT(parse({"--nope=1"}, {"yes"}),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(Options, NonOptionArgumentIsFatal)
{
    EXPECT_EXIT(parse({"positional"}, {"x"}),
                ::testing::ExitedWithCode(1), "expected --key=value");
}

TEST(Options, ParseIntAcceptsWholeTokensOnly)
{
    // The strict parser behind --jobs / DCG_JOBS validation: the whole
    // token must be one integer, unlike getInt's legacy strtoll.
    std::int64_t v = 0;
    EXPECT_TRUE(Options::parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(Options::parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_TRUE(Options::parseInt("0", v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(Options::parseInt("0x10", v));  // base-0: hex works
    EXPECT_EQ(v, 16);

    EXPECT_FALSE(Options::parseInt("", v));
    EXPECT_FALSE(Options::parseInt("banana", v));
    EXPECT_FALSE(Options::parseInt("12abc", v));
    EXPECT_FALSE(Options::parseInt("1.5", v));
    EXPECT_FALSE(Options::parseInt("4 ", v));
    EXPECT_FALSE(Options::parseInt("99999999999999999999999999", v));
}

TEST(Options, EnvIntReadsEnvironment)
{
    ::setenv("DCG_TEST_ENV_INT", "123", 1);
    EXPECT_EQ(Options::envInt("DCG_TEST_ENV_INT", 0), 123);
    ::unsetenv("DCG_TEST_ENV_INT");
    EXPECT_EQ(Options::envInt("DCG_TEST_ENV_INT", 55), 55);
}
