/** Tests for the statistics registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace dcg;

TEST(Stats, CounterBasics)
{
    StatRegistry reg;
    Counter &c = reg.counter("a.count", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
    EXPECT_DOUBLE_EQ(reg.lookup("a.count"), 7.0);
}

TEST(Stats, ScalarAccumulates)
{
    StatRegistry reg;
    Scalar &s = reg.scalar("e", "energy");
    s += 1.5;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.set(1.0);
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(Stats, AverageMean)
{
    StatRegistry reg;
    Average &a = reg.average("m", "mean");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    StatRegistry reg;
    Distribution &d = reg.distribution("d", "dist", 4);
    d.sample(0);
    d.sample(3);
    d.sample(3);
    d.sample(9);  // overflow bucket
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(3), 2u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_NEAR(d.mean(), (0 + 3 + 3 + 9) / 4.0, 1e-9);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatRegistry reg;
    Counter &c = reg.counter("n", "count");
    Formula &f = reg.formula("twice", "2n");
    f.define([&]() { return 2.0 * static_cast<double>(c.value()); });
    c += 10;
    EXPECT_DOUBLE_EQ(f.value(), 20.0);
    c += 10;
    EXPECT_DOUBLE_EQ(reg.lookup("twice"), 40.0);
}

TEST(Stats, DuplicateNameDies)
{
    StatRegistry reg;
    reg.counter("dup", "first");
    EXPECT_DEATH(reg.counter("dup", "second"), "duplicate");
}

TEST(Stats, LookupMissingReturnsZero)
{
    StatRegistry reg;
    EXPECT_DOUBLE_EQ(reg.lookup("nope"), 0.0);
    EXPECT_FALSE(reg.contains("nope"));
}

TEST(Stats, ResetAllClearsValues)
{
    StatRegistry reg;
    Counter &c = reg.counter("c", "x");
    Scalar &s = reg.scalar("s", "x");
    Average &a = reg.average("a", "x");
    c += 3;
    s += 2.0;
    a.sample(5.0);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(Stats, DumpContainsNamesAndDescriptions)
{
    StatRegistry reg;
    reg.counter("core.cycles", "simulated cycles") += 12;
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.cycles"), std::string::npos);
    EXPECT_NE(out.find("simulated cycles"), std::string::npos);
    EXPECT_NE(out.find("12"), std::string::npos);
}

TEST(Stats, SizeCountsEntries)
{
    StatRegistry reg;
    reg.counter("a", "");
    reg.scalar("b", "");
    reg.formula("c", "");
    EXPECT_EQ(reg.size(), 3u);
}
