/** Tests for the text-table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using namespace dcg;

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchDies)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTable, NumFormatsDecimals)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, PctScalesFraction)
{
    EXPECT_EQ(TextTable::pct(0.199), "19.9");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100");
}

TEST(TextTable, EmptyTableStillPrintsHeader)
{
    TextTable t({"col"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("col"), std::string::npos);
}
