/** Tests for the fixed-latency delay line. */

#include <gtest/gtest.h>

#include "common/delay_queue.hh"

using namespace dcg;

TEST(DelayQueue, DepthOneIsOneCycleDelay)
{
    DelayQueue<int> q(1, 0);
    EXPECT_EQ(q.tick(5), 0);  // idle value first
    EXPECT_EQ(q.tick(6), 5);
    EXPECT_EQ(q.tick(7), 6);
}

TEST(DelayQueue, DepthThreeDelaysByThree)
{
    DelayQueue<int> q(3, -1);
    EXPECT_EQ(q.tick(10), -1);
    EXPECT_EQ(q.tick(11), -1);
    EXPECT_EQ(q.tick(12), -1);
    EXPECT_EQ(q.tick(13), 10);
    EXPECT_EQ(q.tick(14), 11);
}

TEST(DelayQueue, FrontPeeksWithoutConsuming)
{
    DelayQueue<int> q(2, 0);
    q.tick(1);
    q.tick(2);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.tick(3), 1);
}

TEST(DelayQueue, FlushRefills)
{
    DelayQueue<int> q(2, 0);
    q.tick(1);
    q.tick(2);
    q.flush(9);
    EXPECT_EQ(q.tick(3), 9);
    EXPECT_EQ(q.tick(4), 9);
    EXPECT_EQ(q.tick(5), 3);
}

TEST(DelayQueue, WorksWithStructs)
{
    struct Grant { unsigned mask; };
    DelayQueue<Grant> q(2, Grant{0});
    q.tick(Grant{0x3});
    q.tick(Grant{0x5});
    EXPECT_EQ(q.tick(Grant{0}).mask, 0x3u);
    EXPECT_EQ(q.tick(Grant{0}).mask, 0x5u);
}

TEST(DelayQueue, DepthAccessor)
{
    DelayQueue<int> q(4, 0);
    EXPECT_EQ(q.depth(), 4u);
}

/** A delay line models the paper's piped GRANT signals: the value the
 *  issue stage writes in cycle X emerges exactly depth cycles later. */
TEST(DelayQueue, LongStreamKeepsOrdering)
{
    DelayQueue<int> q(5, 0);
    for (int i = 1; i <= 100; ++i) {
        const int out = q.tick(i);
        if (i <= 5)
            EXPECT_EQ(out, 0);
        else
            EXPECT_EQ(out, i - 5);
    }
}
