/** Tests for the deterministic PRNG and discrete sampling. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hh"

using namespace dcg;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    // SplitMix expansion must not produce the degenerate all-zero state.
    std::uint64_t acc = 0;
    for (int i = 0; i < 16; ++i)
        acc |= r.next();
    EXPECT_NE(acc, 0u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.uniformInt(3, 10);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 10u);
        saw_lo |= v == 3;
        saw_hi |= v == 10;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory)
{
    Rng r(19);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.geometric(p);
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricHonoursCap)
{
    Rng r(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(r.geometric(0.01, 5), 5u);
}

TEST(Rng, GeometricPEqualOneIsZero)
{
    Rng r(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(DiscreteSampler, RespectsWeights)
{
    Rng r(31);
    DiscreteSampler s({1.0, 3.0, 0.0, 6.0});
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[s.sample(r)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(DiscreteSampler, ProbabilityAccessorsNormalised)
{
    DiscreteSampler s({2.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(s.probability(0), 0.25);
    EXPECT_DOUBLE_EQ(s.probability(1), 0.25);
    EXPECT_DOUBLE_EQ(s.probability(2), 0.5);
    EXPECT_EQ(s.size(), 3u);
}

TEST(DiscreteSampler, SingleBucketAlwaysSampled)
{
    Rng r(37);
    DiscreteSampler s({42.0});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(s.sample(r), 0u);
}
