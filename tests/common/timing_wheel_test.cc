/** Tests for the timing wheel (short-horizon event scheduler). */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "common/timing_wheel.hh"

using namespace dcg;

TEST(TimingWheel, DeliversAtExactDelay)
{
    TimingWheel<int> w(16);
    w.schedule(3, 42);
    EXPECT_TRUE(w.advance().empty());   // cycle 1
    EXPECT_TRUE(w.advance().empty());   // cycle 2
    const auto &due = w.advance();      // cycle 3
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 42);
}

TEST(TimingWheel, MultipleEventsSameCycle)
{
    TimingWheel<int> w(16);
    w.schedule(2, 1);
    w.schedule(2, 2);
    w.schedule(2, 3);
    w.advance();
    const auto &due = w.advance();
    EXPECT_EQ(due.size(), 3u);
}

TEST(TimingWheel, OverflowBeyondHorizonStillDelivered)
{
    TimingWheel<int> w(8);
    w.schedule(20, 99);  // beyond the 8-slot horizon
    for (int i = 0; i < 19; ++i)
        EXPECT_TRUE(w.advance().empty()) << "cycle " << i;
    const auto &due = w.advance();
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 99);
}

TEST(TimingWheel, PendingCountTracksScheduleAndDelivery)
{
    TimingWheel<int> w(8);
    w.schedule(1, 1);
    w.schedule(5, 2);
    w.schedule(30, 3);
    EXPECT_EQ(w.pendingEvents(), 3u);
    w.advance();
    EXPECT_EQ(w.pendingEvents(), 2u);
}

TEST(TimingWheel, ZeroDelayDies)
{
    TimingWheel<int> w(8);
    EXPECT_DEATH(w.schedule(0, 1), "current cycle");
}

/** Property: random schedules always pop exactly at their delay. */
TEST(TimingWheel, PropertyRandomSchedulesDeliverOnTime)
{
    Rng rng(123);
    TimingWheel<std::pair<Cycle, int>> w(64);
    std::multimap<Cycle, int> expect;
    int next_id = 0;
    Cycle now = 0;

    for (int step = 0; step < 20000; ++step) {
        // Schedule 0-2 events with random delays (some beyond horizon).
        const unsigned k = static_cast<unsigned>(rng.nextBounded(3));
        for (unsigned i = 0; i < k; ++i) {
            const Cycle delay = 1 + rng.nextBounded(200);
            w.schedule(delay, {now + delay, next_id});
            expect.emplace(now + delay, next_id);
            ++next_id;
        }
        const auto &due = w.advance();
        ++now;
        const auto range = expect.equal_range(now);
        const auto want =
            static_cast<std::size_t>(std::distance(range.first,
                                                   range.second));
        ASSERT_EQ(due.size(), want) << "at cycle " << now;
        for (const auto &[due_cycle, id] : due)
            EXPECT_EQ(due_cycle, now);
        expect.erase(range.first, range.second);
    }
}
