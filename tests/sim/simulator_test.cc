/** Tests for the simulator harness itself. */

#include <gtest/gtest.h>

#include <sstream>

#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/simulator.hh"

using namespace dcg;

TEST(Simulator, RunsRequestedInstructionCount)
{
    Simulator sim(profileByName("gzip"), table1Config());
    sim.run(20000, 5000);
    EXPECT_GE(sim.core().committedInsts(), 20000u);
    EXPECT_GT(sim.power().cycles(), 0u);
}

TEST(Simulator, WarmupResetsMeasurement)
{
    Simulator sim(profileByName("gzip"), table1Config());
    sim.run(10000, 10000);
    // Measured committed count excludes warm-up instructions.
    const RunResult r = sim.result();
    EXPECT_LT(r.instructions, 12000u);
    EXPECT_GE(r.instructions, 10000u);
}

TEST(Simulator, ResultFieldsPopulated)
{
    const RunResult r =
        runBenchmark(profileByName("vortex"), table1Config(), 40000,
                     20000);
    EXPECT_EQ(r.benchmark, "vortex");
    EXPECT_EQ(r.scheme, "base");
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.totalEnergyPJ, 0.0);
    EXPECT_GT(r.avgPowerW, 0.0);
    EXPECT_GT(r.branchAccuracy, 0.5);
    EXPECT_GT(r.energyPerInstPJ(), 0.0);
    EXPECT_GT(r.intUnitUtil, 0.0);
    EXPECT_GT(r.latchUtil, 0.0);
}

TEST(Simulator, EveryRegisteredSchemeInstantiates)
{
    // The registry catalog is the source of truth: every scheme it
    // lists must build a policy whose name() round-trips the key.
    const auto names = gating::schemeNames();
    ASSERT_GE(names.size(), 6u);
    for (const std::string &s : names) {
        Simulator sim(profileByName("gzip"), table1Config(s));
        EXPECT_EQ(sim.policy().name(), s);
    }
}

TEST(Simulator, ReproducibleAcrossInstances)
{
    const auto a =
        runBenchmark(profileByName("parser"), table1Config(), 15000,
                     5000);
    const auto b =
        runBenchmark(profileByName("parser"), table1Config(), 15000,
                     5000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.totalEnergyPJ, b.totalEnergyPJ);
}

TEST(Simulator, SeedChangesTimingSlightly)
{
    SimConfig c1 = table1Config();
    SimConfig c2 = table1Config();
    c2.seed = 999;
    const auto a = runBenchmark(profileByName("parser"), c1, 40000, 15000);
    const auto b = runBenchmark(profileByName("parser"), c2, 40000, 15000);
    EXPECT_NE(a.cycles, b.cycles);
    // ...but the statistics stay in the same band (phase noise makes
    // short runs wobble; allow a generous band).
    EXPECT_NEAR(a.ipc, b.ipc, a.ipc * 0.35);
}

TEST(Simulator, DumpStatsProducesRegistryText)
{
    Simulator sim(profileByName("gzip"), table1Config());
    sim.run(5000, 1000);
    std::ostringstream os;
    sim.dumpStats(os);
    EXPECT_NE(os.str().find("core.ipc"), std::string::npos);
    EXPECT_NE(os.str().find("power.total_energy_pj"), std::string::npos);
}

TEST(Presets, Table1ConfigMatchesPaper)
{
    const SimConfig cfg = table1Config();
    EXPECT_EQ(cfg.core.issueWidth, 8u);
    EXPECT_EQ(cfg.core.depth.totalStages(), 8u);
    EXPECT_EQ(cfg.mem.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.mem.memLatency, 100u);
    EXPECT_EQ(cfg.bpred.l1Entries, 8192u);
    EXPECT_EQ(cfg.bpred.btbEntries, 8192u);
}

TEST(Presets, DeepPipelineConfigIsTwentyStages)
{
    EXPECT_EQ(deepPipelineConfig().core.depth.totalStages(), 20u);
}

TEST(Presets, PrintConfigMentionsKeyParameters)
{
    std::ostringstream os;
    printConfig(table1Config(), os);
    const std::string out = os.str();
    EXPECT_NE(out.find("8-way issue"), std::string::npos);
    EXPECT_NE(out.find("128-entry window"), std::string::npos);
    EXPECT_NE(out.find("6 integer ALUs"), std::string::npos);
    EXPECT_NE(out.find("64KB"), std::string::npos);
    EXPECT_NE(out.find("2MB"), std::string::npos);
}

TEST(Simulator, EnvDefaultsArepositive)
{
    EXPECT_GT(defaultBenchInstructions(), 0u);
    EXPECT_GT(defaultBenchWarmup(), 0u);
}
