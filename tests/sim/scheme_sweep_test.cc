/**
 * Registry-parameterised scheme sweep: the invariants every gating
 * scheme must satisfy, asserted for each *registered* scheme so a new
 * scheme file is under test the moment it registers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

constexpr std::uint64_t kInsts = 20000;
constexpr std::uint64_t kWarmup = 5000;

class SchemeSweep : public ::testing::TestWithParam<std::string>
{
};

RunResult
runSchemeOnce(const std::string &scheme)
{
    return runBenchmark(profileByName("gzip"), table1Config(scheme),
                        kInsts, kWarmup);
}

} // namespace

TEST_P(SchemeSweep, DeterminismInvariantHolds)
{
    // PowerModel::tick() asserts per cycle that gated + used never
    // exceeds capacity for any block class (the paper's "a gated block
    // is never a used block"), in release builds too — a completed run
    // IS the invariant check. The result must also be well-formed.
    const RunResult r = runSchemeOnce(GetParam());
    EXPECT_EQ(r.scheme, GetParam());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.totalEnergyPJ, 0.0);
}

TEST_P(SchemeSweep, ReportsAreByteStableAcrossRuns)
{
    // Same seed, same scheme: the canonical JSON report must be
    // byte-identical across independent simulator instances (the
    // property the result cache and the wire protocol rest on).
    std::ostringstream a, b;
    writeResultsJson({runSchemeOnce(GetParam())}, a);
    writeResultsJson({runSchemeOnce(GetParam())}, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST_P(SchemeSweep, NeverCostsEnergyVersusBaseline)
{
    // Every gating scheme's reason to exist: on a representative small
    // trace its total energy must not exceed the ungated baseline
    // (overheads — DCG control, DDCG comparators, CG-OoO schedulers —
    // included).
    const RunResult base = runSchemeOnce("base");
    const RunResult gated = runSchemeOnce(GetParam());
    EXPECT_LE(gated.totalEnergyPJ, base.totalEnergyPJ) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSchemes, SchemeSweep,
    ::testing::ValuesIn(gating::schemeNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        // gtest names reject '-': plb-ext -> plb_ext.
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });
