/**
 * @file
 * Skip-ahead equivalence: for every registered gating scheme, a run
 * with deterministic idle skip-ahead enabled (SimConfig::skipAhead,
 * the default) must be indistinguishable from ticking through every
 * idle cycle — identical cycle counts, bitwise-identical energy
 * totals, and a byte-identical report (modulo the core.skipped_cycles
 * diagnostic itself, which is the one statistic allowed to differ).
 *
 * The SPEC profiles never trigger skip-ahead: their code footprints
 * fit in the L1 I-cache, so fetch never stalls long with a drained
 * window (see EXPERIMENTS.md "Simulator performance"). The adversarial
 * profiles here are built to hit the skip path and its neighbours:
 * an I-cache-storming footprint (long fetch stalls over an empty
 * machine), a mispredict-heavy branch mix (flush bursts), and a
 * dependence-chained mix (empty-issue windows with a full window).
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/spec2000.hh"

namespace {

using namespace dcg;

/**
 * Code footprint far beyond every cache level: fetch repeatedly
 * misses to memory while short dependence chains drain the window,
 * which is exactly the provably idle stall skip-ahead batches.
 */
Profile
icacheStormProfile()
{
    Profile p = profileByName("gzip");
    p.name = "icache-storm";
    p.codeFootprintBytes = 16 * 1024 * 1024;
    // Keep the back end fast so the window actually drains during the
    // fetch stalls: stack-resident loads, no pointer-chasing region.
    p.memory.fracStack = 0.9;
    p.memory.fracStride = 0.1;
    p.memory.fracRandom = 0.0;
    p.deps.srcReadyProb = 0.8;
    return p;
}

/** Mispredict-heavy mix: constant branch-flush bursts. */
Profile
flushBurstProfile()
{
    Profile p = profileByName("gzip");
    p.name = "flush-burst";
    p.branches.fracStronglyTaken = 0.1;
    p.branches.fracStronglyNotTaken = 0.1;
    p.branches.fracLoop = 0.1;
    p.branches.fracRandom = 0.7;
    return p;
}

/** Long serial dependence chains: empty-issue windows, full window. */
Profile
depChainProfile()
{
    Profile p = profileByName("gzip");
    p.name = "dep-chain";
    p.deps.srcReadyProb = 0.02;
    p.deps.depGeoP = 0.9;  // producers are almost always the previous op
    p.phases.lowIlpFraction = 0.8;
    return p;
}

std::vector<Profile>
adversarialProfiles()
{
    return {icacheStormProfile(), flushBurstProfile(), depChainProfile()};
}

struct RunOutput
{
    RunResult result;
    std::string reportNoSkipStat;
    double skippedCycles = 0.0;
};

/** Run with the given skip setting; capture report + skip counter. */
RunOutput
runOnce(const Profile &prof, const std::string &scheme, bool skip)
{
    SimConfig cfg = table1Config(scheme);
    cfg.seed = 11;
    cfg.skipAhead = skip;
    Simulator sim(prof, cfg);
    sim.run(6000, 1500);

    RunOutput out;
    out.result = sim.result();
    out.skippedCycles = sim.stats().lookup("core.skipped_cycles");

    std::ostringstream os;
    sim.dumpStats(os);
    writeResultsJson({out.result}, os);
    // Drop the one line that legitimately differs between the two
    // modes; everything else must match byte for byte.
    std::istringstream in(os.str());
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("core.skipped_cycles") == std::string::npos)
            out.reportNoSkipStat += line + "\n";
    }
    return out;
}

class SkipAheadEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SkipAheadEquivalence, OffAndOnAreByteIdentical)
{
    const std::string &scheme = GetParam();
    for (const Profile &prof : adversarialProfiles()) {
        SCOPED_TRACE(prof.name);
        const RunOutput off = runOnce(prof, scheme, false);
        const RunOutput on = runOnce(prof, scheme, true);

        EXPECT_EQ(off.result.cycles, on.result.cycles);
        EXPECT_EQ(off.result.instructions, on.result.instructions);
        // Bitwise: idle energy is count-based on both paths, so not
        // even the last ulp may move.
        EXPECT_EQ(off.result.totalEnergyPJ, on.result.totalEnergyPJ);
        EXPECT_EQ(off.reportNoSkipStat, on.reportNoSkipStat);

        EXPECT_EQ(off.skippedCycles, 0.0)
            << "skip-off run must tick every cycle";
        if (prof.name == "icache-storm") {
            // The equivalence above is only meaningful if the skip
            // path actually engaged.
            EXPECT_GT(on.skippedCycles, 0.0)
                << "adversarial profile failed to trigger skip-ahead";
        }
    }
}

std::string
sanitize(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, SkipAheadEquivalence,
                         ::testing::ValuesIn(gating::schemeNames()),
                         sanitize);

} // namespace
