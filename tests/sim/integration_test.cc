/**
 * End-to-end reproduction invariants: the qualitative claims of the
 * paper's evaluation section, checked on shortened runs.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/presets.hh"
#include "sim/simulator.hh"

using namespace dcg;

namespace {

constexpr std::uint64_t kInsts = 60000;
constexpr std::uint64_t kWarm = 30000;

RunResult
runScheme(const std::string &bench, const std::string &scheme,
          bool deep = false)
{
    const SimConfig cfg =
        deep ? deepPipelineConfig(scheme) : table1Config(scheme);
    return runBenchmark(profileByName(bench), cfg, kInsts, kWarm);
}

} // namespace

/** Sec 5.1 headline: DCG saves substantial power at zero IPC cost. */
TEST(Integration, DcgSavesPowerWithZeroPerformanceLoss)
{
    for (const char *bench : {"gzip", "applu"}) {
        const RunResult base = runScheme(bench, "base");
        const RunResult dcg = runScheme(bench, "dcg");
        EXPECT_EQ(base.cycles, dcg.cycles) << bench;  // bit-exact timing
        const double s = 1.0 - dcg.avgPowerW / base.avgPowerW;
        EXPECT_GT(s, 0.10) << bench;
        EXPECT_LT(s, 0.60) << bench;
    }
}

/** Sec 5.1: PLB saves less than DCG and loses performance. */
TEST(Integration, DcgBeatsPlbOnPowerAndPerformance)
{
    const char *bench = "twolf";
    const RunResult base = runScheme(bench, "base");
    const RunResult dcg = runScheme(bench, "dcg");
    const RunResult orig = runScheme(bench, "plb-orig");
    const RunResult ext = runScheme(bench, "plb-ext");

    const double s_dcg = 1.0 - dcg.avgPowerW / base.avgPowerW;
    const double s_orig = 1.0 - orig.avgPowerW / base.avgPowerW;
    const double s_ext = 1.0 - ext.avgPowerW / base.avgPowerW;

    EXPECT_GT(s_dcg, s_ext);
    EXPECT_GT(s_ext, s_orig);
    EXPECT_GT(s_orig, 0.0);

    // PLB pays an IPC price; DCG does not.
    EXPECT_EQ(dcg.ipc, base.ipc);
    EXPECT_LT(ext.ipc, base.ipc);
}

/** Sec 5.1: mcf and lucas are DCG's best cases (stall-heavy). */
TEST(Integration, StallHeavyProgramsSaveMost)
{
    const RunResult base_mcf = runScheme("mcf", "base");
    const RunResult dcg_mcf = runScheme("mcf", "dcg");
    const RunResult base_gzip = runScheme("gzip", "base");
    const RunResult dcg_gzip = runScheme("gzip", "dcg");
    const double s_mcf = 1.0 - dcg_mcf.avgPowerW / base_mcf.avgPowerW;
    const double s_gzip = 1.0 - dcg_gzip.avgPowerW / base_gzip.avgPowerW;
    EXPECT_GT(s_mcf, s_gzip + 0.05);
}

/** Sec 5.2/Figure 13: int programs save ~all FPU power under DCG. */
TEST(Integration, IntCodesGateFpusAlmostEntirely)
{
    const RunResult base = runScheme("perlbmk", "base");
    const RunResult dcg = runScheme("perlbmk", "dcg");
    const double fpu_saving = 1.0 - dcg.fpUnitsPJ / base.fpUnitsPJ;
    EXPECT_GT(fpu_saving, 0.95);
}

/** Figure 12 shape: int-unit savings ~= 1 - utilisation. */
TEST(Integration, IntUnitSavingsTrackIdleFraction)
{
    const RunResult base = runScheme("bzip2", "base");
    const RunResult dcg = runScheme("bzip2", "dcg");
    const double s = 1.0 - dcg.intUnitsPJ / base.intUnitsPJ;
    // Clock power dominates the units, so savings land near the idle
    // fraction (1 - util), modulo per-op switching energy.
    EXPECT_NEAR(s, 1.0 - base.intUnitUtil, 0.15);
}

/** Figure 15 premise: decoders are a large minority of D-cache power. */
TEST(Integration, DecoderShareOfDcachePowerNearForty)
{
    const RunResult base = runScheme("vortex", "base");
    const double share =
        base.componentPJ[static_cast<unsigned>(
            PowerComponent::DcacheDecoder)] / base.dcachePJ;
    EXPECT_GT(share, 0.25);
    EXPECT_LT(share, 0.55);
}

/** Figure 16 shape: result-bus savings ~= idle bus fraction. */
TEST(Integration, ResultBusSavingsTrackIdleBuses)
{
    const RunResult base = runScheme("parser", "base");
    const RunResult dcg = runScheme("parser", "dcg");
    const double s = 1.0 - dcg.resultBusPJ / base.resultBusPJ;
    EXPECT_NEAR(s, 1.0 - base.resultBusUtil, 0.2);
}

/** Figure 17: the 20-stage pipeline saves more than the 8-stage one. */
TEST(Integration, DeeperPipelineIncreasesDcgSavings)
{
    const char *bench = "gcc";
    const RunResult b8 = runScheme(bench, "base", false);
    const RunResult d8 = runScheme(bench, "dcg", false);
    const RunResult b20 = runScheme(bench, "base", true);
    const RunResult d20 = runScheme(bench, "dcg", true);
    const double s8 = 1.0 - d8.avgPowerW / b8.avgPowerW;
    const double s20 = 1.0 - d20.avgPowerW / b20.avgPowerW;
    EXPECT_GT(s20, s8);
}

/** Sec 4.4: dropping from 6 to 4 integer ALUs costs real performance,
 *  while 8 -> 6 is nearly free. */
TEST(Integration, SixIntAlusAreTheSweetSpot)
{
    const Profile p = profileByName("bzip2");
    std::map<unsigned, double> ipc;
    for (unsigned alus : {8u, 6u, 4u}) {
        SimConfig cfg = table1Config();
        cfg.core.fuCount[0] = alus;
        ipc[alus] = runBenchmark(p, cfg, kInsts, kWarm).ipc;
    }
    EXPECT_GT(ipc[6] / ipc[8], 0.97);   // paper: >= 98.8% worst case
    EXPECT_LT(ipc[4] / ipc[8], ipc[6] / ipc[8]);
}

/** DCG per-component savings all positive (Sec 5.1: "savings come from
 *  all, not any one, of the components"). */
TEST(Integration, SavingsComeFromEveryComponent)
{
    const RunResult base = runScheme("equake", "base");
    const RunResult dcg = runScheme("equake", "dcg");
    EXPECT_LT(dcg.latchPJ, base.latchPJ);
    EXPECT_LT(dcg.intUnitsPJ, base.intUnitsPJ);
    EXPECT_LT(dcg.fpUnitsPJ, base.fpUnitsPJ);
    EXPECT_LT(dcg.dcachePJ, base.dcachePJ);
    EXPECT_LT(dcg.resultBusPJ, base.resultBusPJ);
}

/** Per-component: DCG beats PLB-ext on every block it gates. */
TEST(Integration, DcgBeatsPlbExtPerComponent)
{
    const char *bench = "ammp";
    const RunResult base = runScheme(bench, "base");
    const RunResult dcg = runScheme(bench, "dcg");
    const RunResult ext = runScheme(bench, "plb-ext");
    EXPECT_LT(dcg.intUnitsPJ / base.intUnitsPJ,
              ext.intUnitsPJ / base.intUnitsPJ);
    EXPECT_LT(dcg.fpUnitsPJ / base.fpUnitsPJ,
              ext.fpUnitsPJ / base.fpUnitsPJ);
    EXPECT_LT(dcg.resultBusPJ / base.resultBusPJ,
              ext.resultBusPJ / base.resultBusPJ);
}

/** Energy-per-instruction (power-delay) ordering of Figure 11. */
TEST(Integration, PowerDelayOrdering)
{
    const char *bench = "gcc";
    const RunResult base = runScheme(bench, "base");
    const RunResult dcg = runScheme(bench, "dcg");
    const RunResult orig = runScheme(bench, "plb-orig");
    EXPECT_LT(dcg.energyPerInstPJ(), orig.energyPerInstPJ());
    EXPECT_LT(orig.energyPerInstPJ(), base.energyPerInstPJ());
}

/** DCG's zero-loss property holds for every modelled benchmark. */
class ZeroLossSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroLossSweep, DcgTimingBitExact)
{
    const RunResult base = runBenchmark(profileByName(GetParam()),
                                        table1Config("base"),
                                        25000, 10000);
    const RunResult dcg = runBenchmark(profileByName(GetParam()),
                                       table1Config("dcg"),
                                       25000, 10000);
    EXPECT_EQ(base.cycles, dcg.cycles);
    EXPECT_LT(dcg.totalEnergyPJ, base.totalEnergyPJ);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ZeroLossSweep,
                         ::testing::ValuesIn(allSpecNames()),
                         [](const auto &info) { return info.param; });
