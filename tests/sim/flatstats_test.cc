/**
 * @file
 * Flat-counter reconciliation: the tick path accumulates statistics in
 * Core's contiguous uint64 block (CoreStat) and only foldStats()
 * writes them into the named registry. Every flat slot must land in
 * its registry statistic exactly — counters equal, averages
 * reproducing sum/count byte for byte — and the fold must be
 * idempotent, since reports may fold more than once.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "pipeline/core.hh"
#include "sim/presets.hh"
#include "sim/simulator.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

namespace {

using namespace dcg;

struct BareCore
{
    StatRegistry stats;
    TraceGenerator gen;
    MemoryHierarchy mem;
    BranchPredictor bpred;
    Core core;

    explicit BareCore(const char *profile)
        : gen(profileByName(profile), 3),
          mem(HierarchyConfig{}, stats),
          bpred(BranchPredictorConfig{}, stats),
          core(CoreConfig{}, gen, mem, bpred, stats)
    {
    }
};

void
expectReconciled(const StatRegistry &stats, const Core &core)
{
    const auto flat = [&](CoreStat s) {
        return static_cast<double>(core.stat(s));
    };
    const auto mean = [&](CoreStat sum, CoreStat n) {
        return core.stat(n)
            ? flat(sum) / static_cast<double>(core.stat(n)) : 0.0;
    };

    EXPECT_EQ(stats.lookup("core.cycles"), flat(CoreStat::Cycles));
    EXPECT_EQ(stats.lookup("core.committed"),
              flat(CoreStat::Committed));
    EXPECT_EQ(stats.lookup("core.issued"), flat(CoreStat::Issued));
    EXPECT_EQ(stats.lookup("core.fetch_stall_cycles"),
              flat(CoreStat::FetchStallCycles));
    EXPECT_EQ(stats.lookup("core.rob_full_stalls"),
              flat(CoreStat::RobFullStalls));
    EXPECT_EQ(stats.lookup("core.lsq_full_stalls"),
              flat(CoreStat::LsqFullStalls));
    EXPECT_EQ(stats.lookup("core.mispredicts"),
              flat(CoreStat::Mispredicts));
    EXPECT_EQ(stats.lookup("core.skipped_cycles"),
              flat(CoreStat::SkippedCycles));
    EXPECT_EQ(stats.lookup("core.commit_wait_issue"),
              flat(CoreStat::CommitWaitIssue));
    EXPECT_EQ(stats.lookup("core.commit_wait_complete"),
              flat(CoreStat::CommitWaitComplete));
    EXPECT_EQ(stats.lookup("core.commit_wait_storebuf"),
              flat(CoreStat::CommitWaitStoreBuf));

    // Averages fold as (integer sum, sample count); the registry mean
    // must reproduce the flat division bit for bit.
    EXPECT_EQ(stats.lookup("core.window_occupancy"),
              mean(CoreStat::WindowOccSum, CoreStat::WindowOccSamples));
    EXPECT_EQ(stats.lookup("core.issue_wait"),
              mean(CoreStat::IssueWaitSum, CoreStat::IssueWaitSamples));
    EXPECT_EQ(stats.lookup("core.fetched_per_cycle"),
              mean(CoreStat::FetchedSum, CoreStat::FetchedSamples));
    EXPECT_EQ(stats.lookup("core.commit_latency"),
              mean(CoreStat::CommitLatSum, CoreStat::CommitLatSamples));
}

TEST(FlatStats, FoldReconcilesEverySlot)
{
    BareCore b("gzip");
    while (b.core.committedInsts() < 20000)
        b.core.tick();
    b.core.foldStats();
    expectReconciled(b.stats, b.core);

    // The run must actually exercise the slots, or the equalities
    // above are vacuous.
    EXPECT_GT(b.core.stat(CoreStat::Committed), 0u);
    EXPECT_GT(b.core.stat(CoreStat::Issued), 0u);
    EXPECT_GT(b.core.stat(CoreStat::Mispredicts), 0u);
    EXPECT_GT(b.core.stat(CoreStat::WindowOccSamples), 0u);
}

TEST(FlatStats, FoldIsIdempotent)
{
    BareCore b("gcc");
    while (b.core.committedInsts() < 5000)
        b.core.tick();
    b.core.foldStats();
    const double committed = b.stats.lookup("core.committed");
    const double occupancy = b.stats.lookup("core.window_occupancy");
    b.core.foldStats();
    b.core.foldStats();
    EXPECT_EQ(b.stats.lookup("core.committed"), committed);
    EXPECT_EQ(b.stats.lookup("core.window_occupancy"), occupancy);
}

TEST(FlatStats, RegistryUntouchedUntilFold)
{
    BareCore b("gzip");
    while (b.core.committedInsts() < 1000)
        b.core.tick();
    // The whole point of the flat block: the hot loop never writes the
    // registry, so before the fold the named stats still read zero.
    EXPECT_EQ(b.stats.lookup("core.cycles"), 0.0);
    EXPECT_EQ(b.stats.lookup("core.committed"), 0.0);
    b.core.foldStats();
    EXPECT_GT(b.stats.lookup("core.cycles"), 0.0);
}

TEST(FlatStats, SimulatorResultFoldsThroughTheFullStack)
{
    SimConfig cfg = table1Config("dcg");
    cfg.seed = 5;
    Simulator sim(profileByName("mcf"), cfg);
    sim.run(8000, 2000);
    const RunResult r = sim.result();  // folds as a side effect
    expectReconciled(sim.stats(), sim.core());
    EXPECT_EQ(static_cast<double>(r.cycles),
              sim.stats().lookup("core.cycles"));
    EXPECT_EQ(static_cast<double>(r.instructions),
              sim.stats().lookup("core.committed"));
}

} // namespace
