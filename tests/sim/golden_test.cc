/**
 * @file
 * Byte-identity golden corpus for the simulator.
 *
 * Every registered gating scheme runs three canonical presets at two
 * trace lengths; the full report (statistics dump + results JSON) must
 * match the checked-in corpus under tests/sim/golden/ byte for byte.
 * This pins the fast-core machinery (SoA window, event-driven wakeup,
 * flat counters, idle skip-ahead) to exact output: any change that
 * perturbs simulation results — however slightly — fails here before
 * it can silently shift the paper's figures.
 *
 * Regeneration is deliberately manual:
 *
 *   ./build/tests/dcg_golden_tests --update-golden
 *
 * rewrites the corpus in the source tree. There is no environment
 * fallback; a stale corpus must be updated by an explicit, reviewable
 * action, never by CI side effects.
 */

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/spec2000.hh"

namespace {

using namespace dcg;

/** Set by main() when invoked with --update-golden. */
bool updateGolden = false;

struct GoldenCase
{
    const char *preset;   ///< "table1" or "deep"
    const char *profile;  ///< SPEC profile name
    std::uint64_t insts;
    std::uint64_t warmup;
};

/** Three presets x two trace lengths (x every scheme = the corpus). */
constexpr GoldenCase kCases[] = {
    {"table1", "gzip", 3000, 1000},
    {"table1", "gzip", 12000, 1000},
    {"deep", "gcc", 3000, 1000},
    {"deep", "gcc", 12000, 1000},
    {"table1", "mcf", 3000, 1000},
    {"table1", "mcf", 12000, 1000},
};

std::filesystem::path
goldenDir()
{
    return std::filesystem::path(DCG_SIM_GOLDEN_DIR);
}

std::string
fileName(const std::string &scheme, const GoldenCase &c)
{
    std::string s = scheme;
    for (char &ch : s)
        if (ch == '-')
            ch = '_';
    return s + "_" + c.preset + "_" + c.profile + "_" +
           std::to_string(c.insts) + ".txt";
}

/** The bytes under test: full stats dump + the results-JSON record. */
std::string
reportBytes(const std::string &scheme, const GoldenCase &c)
{
    SimConfig cfg = std::string_view(c.preset) == "deep"
        ? deepPipelineConfig(scheme) : table1Config(scheme);
    cfg.seed = 7;
    Simulator sim(profileByName(c.profile), cfg);
    sim.run(c.insts, c.warmup);
    std::ostringstream os;
    sim.dumpStats(os);
    writeResultsJson({sim.result()}, os);
    return os.str();
}

class GoldenReport : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenReport, MatchesCorpusByteForByte)
{
    const std::string &scheme = GetParam();
    for (const GoldenCase &c : kCases) {
        const std::string actual = reportBytes(scheme, c);
        const std::filesystem::path path = goldenDir() / fileName(scheme, c);

        if (updateGolden) {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out << actual;
            ASSERT_TRUE(out.good()) << "cannot write " << path;
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good())
            << "missing golden file " << path
            << " — regenerate with: dcg_golden_tests --update-golden";
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string expected = buf.str();

        if (actual == expected)
            continue;
        // Report the first differing offset: far more useful than two
        // multi-kilobyte blobs in the failure message.
        std::size_t off = 0;
        while (off < actual.size() && off < expected.size() &&
               actual[off] == expected[off])
            ++off;
        const std::size_t ctx = off < 40 ? 0 : off - 40;
        ADD_FAILURE() << "golden mismatch for " << path
                      << "\n  sizes: expected " << expected.size()
                      << " actual " << actual.size()
                      << "\n  first difference at byte " << off
                      << "\n  expected ..."
                      << expected.substr(ctx, 80)
                      << "\n  actual   ..."
                      << actual.substr(ctx, 80);
    }
}

std::string
sanitize(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, GoldenReport,
                         ::testing::ValuesIn(gating::schemeNames()),
                         sanitize);

/**
 * The corpus contains no strays: exactly one file per registered
 * scheme x case. Catches a renamed scheme leaving its old goldens
 * behind (which would otherwise rot silently).
 */
TEST(GoldenCorpus, HasExactlyTheExpectedFiles)
{
    if (updateGolden)
        GTEST_SKIP() << "corpus being regenerated";
    std::vector<std::string> expected;
    for (const std::string &scheme : gating::schemeNames())
        for (const GoldenCase &c : kCases)
            expected.push_back(fileName(scheme, c));
    std::vector<std::string> present;
    for (const auto &e : std::filesystem::directory_iterator(goldenDir()))
        if (e.path().extension() == ".txt")
            present.push_back(e.path().filename().string());
    std::sort(expected.begin(), expected.end());
    std::sort(present.begin(), present.end());
    EXPECT_EQ(expected, present);
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--update-golden") {
            updateGolden = true;
            // Hide the flag from gtest's own flag parsing.
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
