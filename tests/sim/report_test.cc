/** Tests for the CSV/JSON result writers. */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/report.hh"

using namespace dcg;

namespace {

RunResult
sample(const std::string &bench, const std::string &scheme)
{
    RunResult r;
    r.benchmark = bench;
    r.scheme = scheme;
    r.instructions = 1000;
    r.cycles = 400;
    r.ipc = 2.5;
    r.totalEnergyPJ = 12345.0;
    r.avgPowerW = 30.0;
    r.componentPJ[0] = 111.0;
    r.branchAccuracy = 0.9;
    return r;
}

} // namespace

TEST(Report, CsvHasHeaderAndRows)
{
    std::ostringstream os;
    writeResultsCsv({sample("gzip", "dcg"), sample("mcf", "base")}, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("benchmark,scheme,"), std::string::npos);
    EXPECT_NE(out.find("gzip,dcg,1000,400,2.5"), std::string::npos);
    EXPECT_NE(out.find("mcf,base"), std::string::npos);
    // One header + two data rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Report, CsvIncludesComponentColumns)
{
    std::ostringstream os;
    writeResultsCsv({sample("gzip", "dcg")}, os);
    EXPECT_NE(os.str().find("pj_latches"), std::string::npos);
    EXPECT_NE(os.str().find("pj_result_bus"), std::string::npos);
}

TEST(Report, JsonIsWellFormedArray)
{
    std::ostringstream os;
    writeResultsJson({sample("gzip", "dcg"), sample("mcf", "base")}, os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"benchmark\": \"gzip\""), std::string::npos);
    EXPECT_NE(out.find("\"components_pj\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST(Report, JsonEscapesSpecialCharacters)
{
    std::ostringstream os;
    writeResultsJson({sample("we\"ird\\name", "dcg")}, os);
    EXPECT_NE(os.str().find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(Report, EmptyResultsProduceHeaderOnly)
{
    std::ostringstream csv, json;
    writeResultsCsv({}, csv);
    writeResultsJson({}, json);
    const std::string csv_text = csv.str();
    EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 1);
    EXPECT_EQ(json.str(), "[\n]\n");
}

TEST(Report, FileWritersRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/dcg_report.csv";
    writeResultsCsvFile({sample("gzip", "dcg")}, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("benchmark"), std::string::npos);
}

TEST(Report, UnwritablePathIsFatal)
{
    EXPECT_EXIT(writeResultsCsvFile({}, "/nonexistent-dir/x.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}
