/** Tests for the CSV/JSON result writers. */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

RunResult
sample(const std::string &bench, const std::string &scheme)
{
    RunResult r;
    r.benchmark = bench;
    r.scheme = scheme;
    r.instructions = 1000;
    r.cycles = 400;
    r.ipc = 2.5;
    r.totalEnergyPJ = 12345.0;
    r.avgPowerW = 30.0;
    r.componentPJ[0] = 111.0;
    r.branchAccuracy = 0.9;
    return r;
}

} // namespace

TEST(Report, CsvHasHeaderAndRows)
{
    std::ostringstream os;
    writeResultsCsv({sample("gzip", "dcg"), sample("mcf", "base")}, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("benchmark,scheme,"), std::string::npos);
    EXPECT_NE(out.find("gzip,dcg,1000,400,2.5"), std::string::npos);
    EXPECT_NE(out.find("mcf,base"), std::string::npos);
    // One header + two data rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Report, CsvIncludesComponentColumns)
{
    std::ostringstream os;
    writeResultsCsv({sample("gzip", "dcg")}, os);
    EXPECT_NE(os.str().find("pj_latches"), std::string::npos);
    EXPECT_NE(os.str().find("pj_result_bus"), std::string::npos);
}

TEST(Report, JsonIsWellFormedArray)
{
    std::ostringstream os;
    writeResultsJson({sample("gzip", "dcg"), sample("mcf", "base")}, os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"benchmark\": \"gzip\""), std::string::npos);
    EXPECT_NE(out.find("\"components_pj\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST(Report, JsonEscapesSpecialCharacters)
{
    std::ostringstream os;
    writeResultsJson({sample("we\"ird\\name", "dcg")}, os);
    EXPECT_NE(os.str().find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(Report, EmptyResultsProduceHeaderOnly)
{
    std::ostringstream csv, json;
    writeResultsCsv({}, csv);
    writeResultsJson({}, json);
    const std::string csv_text = csv.str();
    EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 1);
    EXPECT_EQ(json.str(), "[\n]\n");
}

TEST(Report, FileWritersRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/dcg_report.csv";
    writeResultsCsvFile({sample("gzip", "dcg")}, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("benchmark"), std::string::npos);
}

TEST(Report, UnwritablePathIsFatal)
{
    EXPECT_EXIT(writeResultsCsvFile({}, "/nonexistent-dir/x.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

namespace {

/** A result with every field set to a non-representable decimal. */
RunResult
fullSample()
{
    RunResult r = sample("mcf", "plb-ext");
    r.ipc = 1.0 / 3.0;
    r.totalEnergyPJ = 2.0 / 7.0;
    r.avgPowerW = 29.123456789012345;
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        r.componentPJ[c] = 1.0 / (c + 3.0);
    r.intUnitsPJ = 0.1;
    r.fpUnitsPJ = 0.2;
    r.latchPJ = 0.3;
    r.dcachePJ = 0.4;
    r.resultBusPJ = 0.5;
    r.intUnitUtil = 1.0 / 9.0;
    r.fpUnitUtil = 1.0 / 11.0;
    r.latchUtil = 1.0 / 13.0;
    r.dcachePortUtil = 1.0 / 17.0;
    r.resultBusUtil = 1.0 / 19.0;
    r.branchAccuracy = 0.937;
    r.l1dMissRate = 0.021;
    r.extraStats["plb.mode_transitions"] = 42.0;
    r.extraStats["dcg.toggles.IntAlu"] = 1.0 / 23.0;
    return r;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.totalEnergyPJ, b.totalEnergyPJ);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        EXPECT_EQ(a.componentPJ[c], b.componentPJ[c]);
    EXPECT_EQ(a.intUnitsPJ, b.intUnitsPJ);
    EXPECT_EQ(a.fpUnitsPJ, b.fpUnitsPJ);
    EXPECT_EQ(a.latchPJ, b.latchPJ);
    EXPECT_EQ(a.dcachePJ, b.dcachePJ);
    EXPECT_EQ(a.resultBusPJ, b.resultBusPJ);
    EXPECT_EQ(a.intUnitUtil, b.intUnitUtil);
    EXPECT_EQ(a.fpUnitUtil, b.fpUnitUtil);
    EXPECT_EQ(a.latchUtil, b.latchUtil);
    EXPECT_EQ(a.dcachePortUtil, b.dcachePortUtil);
    EXPECT_EQ(a.resultBusUtil, b.resultBusUtil);
    EXPECT_EQ(a.branchAccuracy, b.branchAccuracy);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.extraStats, b.extraStats);
}

} // namespace

TEST(Report, JsonRoundTripsBitExactly)
{
    const std::vector<RunResult> in{fullSample(), sample("gzip", "dcg")};
    std::stringstream ss;
    writeResultsJson(in, ss);
    const std::vector<RunResult> out = readResultsJson(ss);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expectBitIdentical(in[i], out[i]);
}

TEST(Report, JsonFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/dcg_report.json";
    writeResultsJsonFile({fullSample()}, path);
    const auto out = readResultsJsonFile(path);
    ASSERT_EQ(out.size(), 1u);
    expectBitIdentical(fullSample(), out[0]);
}

TEST(Report, ReadRejectsMalformedJson)
{
    std::istringstream truncated("[\n  {\"benchmark\": \"gzip\"");
    EXPECT_EXIT(readResultsJson(truncated),
                ::testing::ExitedWithCode(1), "result JSON");
}

TEST(Report, SchemaListsAllFieldGroups)
{
    std::ostringstream os;
    writeResultsSchemaJson(os);
    const std::string s = os.str();
    for (const char *field :
         {"benchmark", "scheme", "instructions", "cycles", "ipc",
          "total_energy_pj", "avg_power_w", "group_pj", "utilization",
          "components_pj", "extra"})
        EXPECT_NE(s.find(std::string("\"name\": \"") + field + '"'),
                  std::string::npos) << field;
    // Every power component is enumerated in the schema.
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        EXPECT_NE(s.find(powerComponentName(
                      static_cast<PowerComponent>(c))),
                  std::string::npos);
}

TEST(Report, StatCatalogMatchesRegisteredStats)
{
    // The catalog in report.cc is the authoritative stat-name list
    // (dcglint checks registrations against it); this test closes the
    // loop in the other direction: the catalog must be exactly the
    // union of what the schemes actually register, so entries cannot
    // rot when a stat is renamed or removed.
    std::set<std::string> registered;
    for (const std::string &scheme : gating::schemeNames()) {
        Simulator sim(profileByName("gzip"), table1Config(scheme));
        std::ostringstream os;
        sim.dumpStats(os);
        std::istringstream is(os.str());
        std::string line;
        while (std::getline(is, line)) {
            const std::size_t sp = line.find(' ');
            if (sp != std::string::npos && sp > 0)
                registered.insert(line.substr(0, sp));
        }
    }

    std::set<std::string> catalog;
    for (const StatCatalogEntry &e : statRegistryCatalog()) {
        EXPECT_TRUE(catalog.insert(e.name).second)
            << "duplicate catalog entry: " << e.name;
    }
    EXPECT_EQ(registered, catalog);
}
