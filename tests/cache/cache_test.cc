/** Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

using namespace dcg;

namespace {

struct Harness
{
    StatRegistry stats;
    MainMemory mem{100, stats};
};

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Harness h;
    Cache c("c", {1024, 2, 32, 2}, &h.mem, h.stats);
    EXPECT_EQ(c.access(0x1000, false, 0), 102u);  // 2 + 100
    EXPECT_EQ(c.access(0x1000, false, 200), 2u);  // now resident
    EXPECT_EQ(c.numMisses(), 1u);
    EXPECT_EQ(c.numAccesses(), 2u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Harness h;
    Cache c("c", {1024, 2, 32, 2}, &h.mem, h.stats);
    c.access(0x1000, false, 0);
    EXPECT_EQ(c.access(0x101f, false, 200), 2u);  // same 32B line
    EXPECT_EQ(c.access(0x1020, false, 200), 102u);  // next line misses
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 4 sets of 32B lines -> addresses 128 apart share a set.
    Harness h;
    Cache c("c", {256, 2, 32, 1}, &h.mem, h.stats);
    c.access(0x0000, false, 0);
    c.access(0x0080, false, 200);
    c.access(0x0000, false, 400);   // touch: 0x0080 becomes LRU
    c.access(0x0100, false, 600);   // evicts 0x0080
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0080));
    EXPECT_TRUE(c.contains(0x0100));
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Harness h;
    Cache c("c", {256, 2, 32, 1}, &h.mem, h.stats);
    c.access(0x0000, false, 0);
    c.access(0x0080, false, 200);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0080));
}

TEST(Cache, WritebackCountedOnDirtyEviction)
{
    Harness h;
    Cache c("c", {256, 1, 32, 1}, &h.mem, h.stats);  // direct mapped
    c.access(0x0000, true, 0);          // dirty
    c.access(0x0100, false, 200);       // evicts dirty line
    EXPECT_EQ(h.stats.lookup("c.writebacks"), 1.0);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Harness h;
    Cache c("c", {256, 1, 32, 1}, &h.mem, h.stats);
    c.access(0x0000, false, 0);
    c.access(0x0100, false, 200);
    EXPECT_EQ(h.stats.lookup("c.writebacks"), 0.0);
}

TEST(Cache, InflightMissMergesInsteadOfRefetching)
{
    Harness h;
    Cache c("c", {1024, 2, 32, 2}, &h.mem, h.stats);
    const Cycle lat0 = c.access(0x1000, false, 1000);
    EXPECT_EQ(lat0, 102u);
    // An access 10 cycles later to the same (in-flight) line waits for
    // the fill rather than paying a fresh miss.
    const Cycle lat1 = c.access(0x1004, false, 1010);
    EXPECT_EQ(lat1, 2u + (1000 + 102 - 1010));
    // Well after the fill it is a plain hit.
    EXPECT_EQ(c.access(0x1008, false, 5000), 2u);
    // Only one memory access was made.
    EXPECT_EQ(h.stats.lookup("mem.accesses"), 1.0);
}

TEST(Cache, MissRateComputed)
{
    Harness h;
    Cache c("c", {1024, 2, 32, 2}, &h.mem, h.stats);
    c.access(0x0, false, 0);
    c.access(0x0, false, 200);
    c.access(0x0, false, 300);
    c.access(0x0, false, 400);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Harness h;
    Cache c("c", {4096, 2, 32, 1}, &h.mem, h.stats);
    Rng rng(1);
    // Random accesses over 16x the capacity: high miss rate.
    for (int i = 0; i < 4000; ++i)
        c.access(rng.nextBounded(64 * 1024) & ~31ull, false,
                 static_cast<Cycle>(10000 + i * 200));
    EXPECT_GT(c.missRate(), 0.7);
}

TEST(Cache, WorkingSetSmallerThanCacheSettles)
{
    Harness h;
    Cache c("c", {4096, 2, 32, 1}, &h.mem, h.stats);
    Rng rng(2);
    for (int i = 0; i < 8000; ++i)
        c.access(rng.nextBounded(2048) & ~31ull, false,
                 static_cast<Cycle>(10000 + i * 200));
    EXPECT_LT(c.missRate(), 0.05);  // only compulsory misses
}

TEST(Cache, BadGeometryDies)
{
    Harness h;
    EXPECT_DEATH(Cache("bad", {1000, 3, 33, 1}, &h.mem, h.stats),
                 "power of two");
}

TEST(MainMemory, FixedLatencyAndCounting)
{
    Harness h;
    EXPECT_EQ(h.mem.access(0x0, false, 0), 100u);
    EXPECT_EQ(h.mem.access(0x12345678, true, 99), 100u);
    EXPECT_EQ(h.stats.lookup("mem.accesses"), 2.0);
}

/** Parameterised geometry sweep: residency invariant for any shape. */
struct Geometry
{
    std::uint64_t size;
    unsigned assoc;
    unsigned line;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometrySweep, SecondPassOverResidentSetAlwaysHits)
{
    const Geometry g = GetParam();
    Harness h;
    Cache c("c", {g.size, g.assoc, g.line, 1}, &h.mem, h.stats);
    // Touch exactly the cache capacity once, sequentially; a second
    // sequential pass must be all hits for LRU with power-of-two sets.
    for (Addr a = 0; a < g.size; a += g.line)
        c.access(a, false, a);
    const auto misses_first = c.numMisses();
    for (Addr a = 0; a < g.size; a += g.line)
        c.access(a, false, 1'000'000 + a);
    EXPECT_EQ(c.numMisses(), misses_first)
        << "size=" << g.size << " assoc=" << g.assoc;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometrySweep,
    ::testing::Values(Geometry{1024, 1, 32}, Geometry{1024, 2, 32},
                      Geometry{4096, 4, 64}, Geometry{65536, 2, 32},
                      Geometry{65536, 8, 64}, Geometry{2097152, 8, 64}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "s" + std::to_string(info.param.size) + "_w" +
               std::to_string(info.param.assoc) + "_l" +
               std::to_string(info.param.line);
    });

TEST(Cache, MshrLimitQueuesConcurrentMisses)
{
    Harness h;
    CacheGeometry g{1024, 2, 32, 2};
    g.mshrs = 1;
    Cache c("c", g, &h.mem, h.stats);
    // Two misses in the same cycle: the second waits for the first
    // fill's MSHR.
    const Cycle lat0 = c.access(0x1000, false, 0);
    const Cycle lat1 = c.access(0x2000, false, 0);
    EXPECT_EQ(lat0, 102u);
    EXPECT_GT(lat1, lat0);
    EXPECT_EQ(h.stats.lookup("c.mshr_stalls"), 1.0);
}

TEST(Cache, UnlimitedMshrsNeverQueue)
{
    Harness h;
    CacheGeometry g{4096, 2, 32, 2};
    g.mshrs = 0;
    Cache c("c", g, &h.mem, h.stats);
    for (Addr a = 0; a < 16 * 1024; a += 32)
        EXPECT_EQ(c.access(a, false, 0), 102u);
    EXPECT_EQ(h.stats.lookup("c.mshr_stalls"), 0.0);
}

TEST(Cache, GenerousMshrsDoNotQueueModestTraffic)
{
    Harness h;
    CacheGeometry g{4096, 2, 32, 2};
    g.mshrs = 8;
    Cache c("c", g, &h.mem, h.stats);
    // Misses spaced beyond the memory latency never overlap by 8.
    for (int i = 0; i < 32; ++i)
        c.access(static_cast<Addr>(i) * 4096, false,
                 static_cast<Cycle>(i) * 200);
    EXPECT_EQ(h.stats.lookup("c.mshr_stalls"), 0.0);
}

TEST(Cache, NextLinePrefetchCutsStreamMisses)
{
    Harness h1, h2;
    CacheGeometry plain{4096, 2, 32, 2};
    CacheGeometry pf = plain;
    pf.nextLinePrefetch = true;
    Cache a("a", plain, &h1.mem, h1.stats);
    Cache b("b", pf, &h2.mem, h2.stats);
    // Sequential stream over 64KB.
    Cycle t = 0;
    for (Addr addr = 0; addr < 64 * 1024; addr += 8) {
        a.access(addr, false, t);
        b.access(addr, false, t);
        t += 150;  // beyond the fill latency: only residency matters
    }
    EXPECT_LT(b.numMisses(), a.numMisses() / 2 + 8);
    EXPECT_GT(b.numPrefetches(), 0u);
}

TEST(Cache, PrefetchDoesNotChargeRequester)
{
    Harness h;
    CacheGeometry g{4096, 2, 32, 2};
    g.nextLinePrefetch = true;
    Cache c("c", g, &h.mem, h.stats);
    EXPECT_EQ(c.access(0x1000, false, 0), 102u);  // demand latency only
}

TEST(Cache, WarmLineInstallsWithoutStats)
{
    Harness h;
    Cache c("c", {1024, 2, 32, 2}, &h.mem, h.stats);
    c.warmLine(0x1000);
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_EQ(c.numAccesses(), 0u);
    EXPECT_EQ(c.numMisses(), 0u);
    EXPECT_EQ(c.access(0x1000, false, 100), 2u);  // plain hit
}
