/** Tests for the Table-1 memory hierarchy composition. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

using namespace dcg;

TEST(Hierarchy, Table1Defaults)
{
    StatRegistry stats;
    MemoryHierarchy m(HierarchyConfig{}, stats);
    EXPECT_EQ(m.dcache().geometry().sizeBytes, 64u * 1024);
    EXPECT_EQ(m.dcache().geometry().assoc, 2u);
    EXPECT_EQ(m.dcache().geometry().hitLatency, 2u);
    EXPECT_EQ(m.l2cache().geometry().sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(m.l2cache().geometry().assoc, 8u);
    EXPECT_EQ(m.l2cache().geometry().hitLatency, 12u);
    EXPECT_EQ(m.memory().latency(), 100u);
}

TEST(Hierarchy, MissLatencyComposesThroughLevels)
{
    StatRegistry stats;
    MemoryHierarchy m(HierarchyConfig{}, stats);
    // Cold D-cache access: L1(2) + L2(12) + mem(100).
    EXPECT_EQ(m.dcache().access(0x10000, false, 0), 114u);
    // L2 now holds the line; a conflicting L1 miss pays L1 + L2 only.
    // (Same line, well after the fill, from the L1's view it's a hit.)
    EXPECT_EQ(m.dcache().access(0x10000, false, 1000), 2u);
}

TEST(Hierarchy, L2SharedBetweenL1s)
{
    StatRegistry stats;
    MemoryHierarchy m(HierarchyConfig{}, stats);
    // An I-fetch pulls the line into the (shared) L2...
    m.icache().access(0x40000, false, 0);
    // ...so the D-side miss to the same line stops at the L2.
    const Cycle lat = m.dcache().access(0x40000, false, 1000);
    EXPECT_EQ(lat, 2u + 12u);
}

TEST(Hierarchy, SeparateL1sDoNotInterfere)
{
    StatRegistry stats;
    MemoryHierarchy m(HierarchyConfig{}, stats);
    m.dcache().access(0x20000, false, 0);
    EXPECT_TRUE(m.dcache().contains(0x20000));
    EXPECT_FALSE(m.icache().contains(0x20000));
}

TEST(Hierarchy, CustomConfigRespected)
{
    StatRegistry stats;
    HierarchyConfig cfg;
    cfg.memLatency = 250;
    cfg.l1d.hitLatency = 3;
    MemoryHierarchy m(cfg, stats);
    EXPECT_EQ(m.dcache().access(0x0, false, 0), 3u + 12u + 250u);
}
