/** Tests for the two-level direction predictor. */

#include <gtest/gtest.h>

#include "branch/two_level.hh"
#include "common/rng.hh"

using namespace dcg;

TEST(TwoLevel, LearnsAlwaysTaken)
{
    TwoLevelPredictor p;
    int correct = 0;
    for (int i = 0; i < 1000; ++i) {
        correct += p.predict(0x1000) == true;
        p.update(0x1000, true);
    }
    EXPECT_GT(correct, 980);
}

TEST(TwoLevel, LearnsAlwaysNotTaken)
{
    TwoLevelPredictor p;
    int correct = 0;
    for (int i = 0; i < 1000; ++i) {
        correct += p.predict(0x2000) == false;
        p.update(0x2000, false);
    }
    EXPECT_GT(correct, 990);
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    TwoLevelPredictor p;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i % 2) == 0;
        if (i > 200)
            correct += p.predict(0x3000) == taken;
        p.update(0x3000, taken);
    }
    EXPECT_GT(correct, 1750);  // near-perfect after warm-up
}

TEST(TwoLevel, LearnsLoopPattern)
{
    // Period-6 loop: T T T T T N repeated.
    TwoLevelPredictor p;
    int correct = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool taken = (i % 6) != 5;
        if (i > 600) {
            ++total;
            correct += p.predict(0x4000) == taken;
        }
        p.update(0x4000, taken);
    }
    EXPECT_GT(correct / static_cast<double>(total), 0.95);
}

TEST(TwoLevel, RandomBranchNearChance)
{
    TwoLevelPredictor p;
    Rng rng(5);
    int correct = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.bernoulli(0.5);
        correct += p.predict(0x5000) == taken;
        p.update(0x5000, taken);
    }
    EXPECT_NEAR(correct / static_cast<double>(n), 0.5, 0.05);
}

TEST(TwoLevel, IndependentBranchesDoNotShareHistory)
{
    TwoLevelPredictor p;
    // Branch A always taken; branch B always not-taken. Interleaved
    // training must keep both learned.
    for (int i = 0; i < 500; ++i) {
        p.update(0x1000, true);
        p.update(0x2004, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x2004));
}

TEST(TwoLevel, ConfigurableGeometry)
{
    TwoLevelPredictor p(1024, 2048, 8);
    EXPECT_EQ(p.historyBits(), 8u);
    for (int i = 0; i < 200; ++i)
        p.update(0x1234, true);
    EXPECT_TRUE(p.predict(0x1234));
}

TEST(TwoLevel, NonPowerOfTwoTableDies)
{
    EXPECT_DEATH(TwoLevelPredictor(1000, 8192, 12), "powers of two");
}
