/** Tests for the bimodal predictor and the hybrid facade mode. */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"
#include "branch/predictor.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace dcg;

TEST(Bimodal, LearnsBiasQuickly)
{
    BimodalPredictor p;
    p.update(0x1000, true);
    p.update(0x1000, true);
    EXPECT_TRUE(p.predict(0x1000));
    p.update(0x2000, false);
    EXPECT_FALSE(p.predict(0x2000));
}

TEST(Bimodal, SaturatingCountersResistNoise)
{
    BimodalPredictor p;
    for (int i = 0; i < 10; ++i)
        p.update(0x1000, true);
    // One not-taken blip must not flip a saturated counter.
    p.update(0x1000, false);
    EXPECT_TRUE(p.predict(0x1000));
}

TEST(Bimodal, CannotLearnAlternation)
{
    // The structural weakness the 2-level predictor fixes.
    BimodalPredictor p;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i % 2) == 0;
        if (i > 200)
            correct += p.predict(0x3000) == taken;
        p.update(0x3000, taken);
    }
    EXPECT_LT(correct / 1800.0, 0.7);
}

TEST(Bimodal, BadGeometryDies)
{
    EXPECT_DEATH(BimodalPredictor(1000), "power of two");
}

namespace {

double
facadeAccuracy(DirectionKind kind, unsigned period)
{
    StatRegistry stats;
    BranchPredictorConfig cfg;
    cfg.kind = kind;
    BranchPredictor bp(cfg, stats);
    int correct = 0, total = 0;
    for (int i = 0; i < 8000; ++i) {
        const bool taken = (i % period) != (period - 1);
        const auto pred = bp.predict(0x4000);
        const bool ok = bp.resolve(0x4000, pred, taken, 0x5000);
        if (i > 1000) {
            ++total;
            correct += ok;
        }
    }
    return static_cast<double>(correct) / total;
}

} // namespace

TEST(HybridPredictor, BeatsBimodalOnLoopPatterns)
{
    const double hybrid = facadeAccuracy(DirectionKind::Hybrid, 4);
    const double bimodal = facadeAccuracy(DirectionKind::Bimodal, 4);
    EXPECT_GT(hybrid, 0.9);
    EXPECT_GT(hybrid, bimodal + 0.1);
}

TEST(HybridPredictor, MatchesTwoLevelWhenPatternsDominate)
{
    const double hybrid = facadeAccuracy(DirectionKind::Hybrid, 6);
    const double twolevel = facadeAccuracy(DirectionKind::TwoLevel, 6);
    EXPECT_NEAR(hybrid, twolevel, 0.05);
}

TEST(HybridPredictor, AllKindsHandleBiasedBranches)
{
    for (DirectionKind k : {DirectionKind::TwoLevel,
                            DirectionKind::Bimodal,
                            DirectionKind::Hybrid}) {
        StatRegistry stats;
        BranchPredictorConfig cfg;
        cfg.kind = k;
        BranchPredictor bp(cfg, stats);
        Rng rng(11);
        int correct = 0;
        for (int i = 0; i < 4000; ++i) {
            const bool taken = rng.bernoulli(0.98);
            const auto pred = bp.predict(0x1000);
            correct += bp.resolve(0x1000, pred, taken, 0x2000);
        }
        EXPECT_GT(correct / 4000.0, 0.9)
            << "kind " << static_cast<int>(k);
    }
}
