/** Tests for the branch-predictor facade (direction + BTB). */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace dcg;

namespace {

struct Harness
{
    StatRegistry stats;
    BranchPredictor bp{BranchPredictorConfig{}, stats};
};

} // namespace

TEST(BranchPredictor, WarmTakenBranchFullyCorrect)
{
    Harness h;
    // Warm both direction and BTB.
    for (int i = 0; i < 100; ++i) {
        const auto pred = h.bp.predict(0x1000);
        h.bp.resolve(0x1000, pred, true, 0x2000);
    }
    const auto pred = h.bp.predict(0x1000);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.target, 0x2000u);
    EXPECT_TRUE(h.bp.resolve(0x1000, pred, true, 0x2000));
}

TEST(BranchPredictor, TakenWithoutBtbTargetIsIncorrect)
{
    Harness h;
    // Train direction only via a not-taken history... direction will
    // predict not-taken; force the case: prediction says taken but BTB
    // is cold -> counted as a BTB miss and an incorrect prediction.
    BranchPrediction fake;
    fake.taken = true;
    fake.btbHit = false;
    EXPECT_FALSE(h.bp.resolve(0x4000, fake, true, 0x5000));
    EXPECT_EQ(h.stats.lookup("bpred.btb_misses"), 1.0);
}

TEST(BranchPredictor, WrongTargetIsIncorrect)
{
    Harness h;
    BranchPrediction fake;
    fake.taken = true;
    fake.btbHit = true;
    fake.target = 0x9999;
    EXPECT_FALSE(h.bp.resolve(0x4000, fake, true, 0x5000));
}

TEST(BranchPredictor, NotTakenNeedsNoTarget)
{
    Harness h;
    // Correctly predicted not-taken is correct regardless of the BTB.
    for (int i = 0; i < 50; ++i) {
        const auto pred = h.bp.predict(0x3000);
        h.bp.resolve(0x3000, pred, false, 0);
    }
    const auto pred = h.bp.predict(0x3000);
    EXPECT_FALSE(pred.taken);
    EXPECT_TRUE(h.bp.resolve(0x3000, pred, false, 0));
}

TEST(BranchPredictor, AccuracyTracksMixedStream)
{
    Harness h;
    Rng rng(7);
    // 90% taken branch with stable target: accuracy should approach
    // ~90% (mispredicts on the 10% noise).
    for (int i = 0; i < 20000; ++i) {
        const bool taken = rng.bernoulli(0.9);
        const auto pred = h.bp.predict(0x1000);
        h.bp.resolve(0x1000, pred, taken, 0x8000);
    }
    EXPECT_GT(h.bp.accuracy(), 0.80);
    EXPECT_LT(h.bp.accuracy(), 0.97);
}

TEST(BranchPredictor, StatsCountersWired)
{
    Harness h;
    const auto pred = h.bp.predict(0x1000);
    h.bp.resolve(0x1000, pred, !pred.taken, 0x2000);
    EXPECT_EQ(h.stats.lookup("bpred.lookups"), 1.0);
    EXPECT_EQ(h.stats.lookup("bpred.dir_mispredicts"), 1.0);
}
