/** Tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "branch/btb.hh"

using namespace dcg;

TEST(Btb, MissOnColdLookup)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    const auto t = btb.lookup(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    // 8-entry, 2-way: 4 sets. PCs 4 sets apart (<<2 in index) collide.
    Btb btb(8, 2);
    const Addr stride = 4 * 4;  // pc>>2 % 4 selects the set
    btb.update(0x1000, 1);
    btb.update(0x1000 + stride, 2);
    // Touch the first entry so the second becomes LRU.
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
    btb.update(0x1000 + 2 * stride, 3);  // evicts LRU (the second)
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_FALSE(btb.lookup(0x1000 + stride).has_value());
    EXPECT_TRUE(btb.lookup(0x1000 + 2 * stride).has_value());
}

TEST(Btb, ManyBranchesInLargeBtb)
{
    Btb btb(8192, 4);
    for (Addr pc = 0x1000; pc < 0x1000 + 4000 * 4; pc += 4)
        btb.update(pc, pc + 0x100);
    int hits = 0;
    for (Addr pc = 0x1000; pc < 0x1000 + 4000 * 4; pc += 4) {
        const auto t = btb.lookup(pc);
        if (t && *t == pc + 0x100)
            ++hits;
    }
    EXPECT_EQ(hits, 4000);  // 4000 branches fit easily in 8192 entries
}

TEST(Btb, BadGeometryDies)
{
    EXPECT_DEATH(Btb(10, 4), "evenly");
}
