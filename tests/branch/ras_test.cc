/** Tests for the return-address stack. */

#include <gtest/gtest.h>

#include "branch/ras.hh"

using namespace dcg;

TEST(Ras, PushPopLifo)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    Ras ras(4);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, TopPeeksWithoutPopping)
{
    Ras ras(4);
    ras.push(0xabc);
    EXPECT_EQ(ras.top(), 0xabcu);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(Ras, OverflowWrapsCircularly)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);  // overwrites the oldest (1)
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, CapacityReported)
{
    Ras ras(32);
    EXPECT_EQ(ras.capacity(), 32u);
}

TEST(Ras, DeepCallChain)
{
    Ras ras(32);
    for (Addr a = 1; a <= 32; ++a)
        ras.push(a * 16);
    for (Addr a = 32; a >= 1; --a)
        EXPECT_EQ(ras.pop(), a * 16);
}
