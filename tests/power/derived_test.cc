/** Tests for geometry-derived Technology constants. */

#include <gtest/gtest.h>

#include "power/derived.hh"
#include "sim/presets.hh"

using namespace dcg;

namespace {

Technology
derive()
{
    const SimConfig cfg = table1Config();
    return derivedTechnology(cfg.core, cfg.mem);
}

} // namespace

TEST(DerivedTech, AllDerivedValuesPositive)
{
    const Technology t = derive();
    EXPECT_GT(t.dcacheArrayAccessCap, 0.0);
    EXPECT_GT(t.dcacheDecoderCap, 0.0);
    EXPECT_GT(t.icacheAccessCap, 0.0);
    EXPECT_GT(t.l2AccessCap, 0.0);
    EXPECT_GT(t.regReadCap, 0.0);
    EXPECT_GT(t.regWriteCap, 0.0);
    EXPECT_GT(t.iqClockCap, 0.0);
    EXPECT_GT(t.lsqOpCap, 0.0);
    EXPECT_GT(t.renameOpCap, 0.0);
    EXPECT_GT(t.bpredAccessCap, 0.0);
}

TEST(DerivedTech, L2CostsMoreThanL1)
{
    const Technology t = derive();
    EXPECT_GT(t.l2AccessCap, t.dcacheArrayAccessCap);
    EXPECT_GT(t.l2AccessCap, t.icacheAccessCap);
}

TEST(DerivedTech, WriteCostsMoreThanRead)
{
    const Technology t = derive();
    EXPECT_GT(t.regWriteCap, t.regReadCap);
}

TEST(DerivedTech, WithinPlausibleFactorOfCalibrated)
{
    // Raw SRAM capacitance must sit within a broad physical band of
    // the calibrated effective values (which fold in clock buffering
    // and drivers): not orders of magnitude above, and not absurdly
    // small for array-dominated structures.
    const Technology cal;
    const Technology der = derive();
    EXPECT_LT(der.dcacheArrayAccessCap, cal.dcacheArrayAccessCap * 10);
    EXPECT_GT(der.dcacheArrayAccessCap, cal.dcacheArrayAccessCap / 10);
    EXPECT_LT(der.icacheAccessCap, cal.icacheAccessCap * 10);
    EXPECT_GT(der.icacheAccessCap, cal.icacheAccessCap / 10);
    EXPECT_LT(der.regReadCap, cal.regReadCap * 10);
    EXPECT_GT(der.regReadCap, cal.regReadCap / 10);
    EXPECT_LT(der.l2AccessCap, cal.l2AccessCap * 10);
    EXPECT_GT(der.l2AccessCap, cal.l2AccessCap / 10);
}

TEST(DerivedTech, NonArrayConstantsUntouched)
{
    const Technology cal;
    const Technology der = derive();
    EXPECT_DOUBLE_EQ(der.latchBitCap, cal.latchBitCap);
    EXPECT_DOUBLE_EQ(der.clockWiringCap, cal.clockWiringCap);
    EXPECT_DOUBLE_EQ(der.intAluClockCap, cal.intAluClockCap);
    EXPECT_DOUBLE_EQ(der.resultBusClockCap, cal.resultBusClockCap);
}

TEST(DerivedTech, BiggerCachesDeriveBiggerCaps)
{
    const SimConfig cfg = table1Config();
    HierarchyConfig big = cfg.mem;
    big.l1d.sizeBytes *= 4;
    const Technology base = derivedTechnology(cfg.core, cfg.mem);
    const Technology bigger = derivedTechnology(cfg.core, big);
    EXPECT_GT(bigger.dcacheArrayAccessCap, base.dcacheArrayAccessCap);
}

TEST(DerivedTech, CacheArrayGeometryMapsShape)
{
    const ArrayGeometry g = cacheArrayGeometry({65536, 2, 32, 2}, 2);
    EXPECT_EQ(g.rows, 1024u);       // 2048 lines / 2 ways
    EXPECT_EQ(g.cols, 32u * 8);     // line bits
    EXPECT_EQ(g.readPorts, 2u);
}

TEST(DerivedTech, SimulatorRunsWithDerivedTechnology)
{
    SimConfig cfg = table1Config("dcg");
    cfg.tech = derivedTechnology(cfg.core, cfg.mem);
    const RunResult r =
        runBenchmark(profileByName("gzip"), cfg, 15000, 8000);
    EXPECT_GT(r.avgPowerW, 0.0);
    EXPECT_GT(r.ipc, 0.0);
}
