/** Tests for the CACTI-lite array capacitance model. */

#include <gtest/gtest.h>

#include "power/array_model.hh"

using namespace dcg;

TEST(ArrayModel, AllComponentsPositive)
{
    ArrayPowerModel m({128, 64, 2, 1});
    EXPECT_GT(m.decoderCap(), 0.0);
    EXPECT_GT(m.wordlineCap(), 0.0);
    EXPECT_GT(m.bitlineCap(), 0.0);
    EXPECT_GT(m.senseCap(), 0.0);
    EXPECT_GT(m.camSearchCap(8), 0.0);
}

TEST(ArrayModel, ReadIsSumOfStages)
{
    ArrayPowerModel m({256, 128});
    EXPECT_DOUBLE_EQ(m.readAccessCap(),
                     m.decoderCap() + m.wordlineCap() + m.bitlineCap() +
                     m.senseCap());
}

TEST(ArrayModel, MoreRowsCostMoreBitline)
{
    ArrayPowerModel small({64, 64});
    ArrayPowerModel big({1024, 64});
    EXPECT_GT(big.bitlineCap(), small.bitlineCap() * 4);
    EXPECT_GT(big.decoderCap(), small.decoderCap());
}

TEST(ArrayModel, MoreColsCostMoreWordline)
{
    ArrayPowerModel narrow({128, 32});
    ArrayPowerModel wide({128, 512});
    EXPECT_GT(wide.wordlineCap(), narrow.wordlineCap() * 4);
    EXPECT_GT(wide.senseCap(), narrow.senseCap() * 4);
}

TEST(ArrayModel, ExtraPortsIncreaseWireLoads)
{
    ArrayPowerModel one_port({128, 64, 1, 1});
    ArrayPowerModel many_ports({128, 64, 8, 4});
    // Port pitch stretches the cells, lengthening word/bit lines.
    EXPECT_GT(many_ports.wordlineCap(), one_port.wordlineCap());
    EXPECT_GT(many_ports.bitlineCap(), one_port.bitlineCap());
}

TEST(ArrayModel, WriteSkipsSenseAmps)
{
    ArrayPowerModel m({128, 64});
    EXPECT_GT(m.readAccessCap(), 0.0);
    // Write has no sense amps but stronger bitline swing.
    EXPECT_NEAR(m.writeAccessCap(),
                m.decoderCap() + m.wordlineCap() + m.bitlineCap() * 1.2,
                1e-12);
}

TEST(ArrayModel, CamSearchScalesWithTagWidth)
{
    ArrayPowerModel m({128, 16});
    EXPECT_GT(m.camSearchCap(32), m.camSearchCap(8));
}

TEST(ArrayModel, SramCellCapsAreSubPicofarad)
{
    // Sanity on the 0.18um technology numbers: a single 64x64 array's
    // access energy should be well under a cache's but not zero.
    ArrayPowerModel m({64, 64});
    EXPECT_GT(m.readAccessCap(), 0.5);
    EXPECT_LT(m.readAccessCap(), 200.0);
}

TEST(ArrayModel, EmptyGeometryDies)
{
    EXPECT_DEATH(ArrayPowerModel({0, 64}), "empty");
}

TEST(ArrayModel, BitsAccessor)
{
    ArrayGeometry g{128, 64, 1, 1};
    EXPECT_EQ(g.bits(), 128ul * 64ul);
}
