/** Tests for the technology parameter model. */

#include <gtest/gtest.h>

#include "power/technology.hh"

using namespace dcg;

TEST(Technology, EnergyIsCapTimesVddSquared)
{
    Technology t;
    t.vdd = 2.0;
    EXPECT_DOUBLE_EQ(t.energyPJ(10.0), 40.0);
}

TEST(Technology, DefaultsAre018Micron)
{
    Technology t;
    EXPECT_DOUBLE_EQ(t.vdd, 1.8);
    EXPECT_DOUBLE_EQ(t.frequencyGHz, 1.0);
}

TEST(Technology, WattsFromPicojoules)
{
    Technology t;  // 1 GHz
    // 1000 pJ over 10 cycles = 100 pJ/cycle = 100 pJ/ns = 0.1 W.
    EXPECT_NEAR(t.wattsFromPJ(1000.0, 10.0), 0.1, 1e-12);
}

TEST(Technology, WattsScaleWithFrequency)
{
    Technology t;
    t.frequencyGHz = 2.0;
    EXPECT_NEAR(t.wattsFromPJ(1000.0, 10.0), 0.2, 1e-12);
}

TEST(Technology, ZeroCyclesYieldsZeroWatts)
{
    Technology t;
    EXPECT_DOUBLE_EQ(t.wattsFromPJ(1000.0, 0.0), 0.0);
}

TEST(Technology, GatedLoadsArePositive)
{
    // Every capacitance a gating scheme can turn off must be positive,
    // otherwise "savings" could be negative by construction.
    Technology t;
    EXPECT_GT(t.latchBitCap, 0.0);
    EXPECT_GT(t.intAluClockCap, 0.0);
    EXPECT_GT(t.intMulDivClockCap, 0.0);
    EXPECT_GT(t.fpAluClockCap, 0.0);
    EXPECT_GT(t.fpMulDivClockCap, 0.0);
    EXPECT_GT(t.dcacheDecoderCap, 0.0);
    EXPECT_GT(t.resultBusClockCap, 0.0);
}
