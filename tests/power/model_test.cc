/** Tests for the Wattch-style power model. */

#include <gtest/gtest.h>

#include "power/model.hh"

using namespace dcg;

namespace {

struct Harness
{
    StatRegistry stats;
    CoreConfig cfg;
    Technology tech;
    PowerModel model{cfg, tech, stats};
};

GateState
dcgStyleGates(const CoreConfig &cfg, const CycleActivity &act)
{
    GateState g;
    g.dcgControlActive = true;
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        g.fuGateMask[t] = static_cast<std::uint16_t>(
            ((1u << cfg.fuCount[t]) - 1) & ~act.fuBusyMask[t]);
    }
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        if (latchPhaseGateable(static_cast<LatchPhase>(p))) {
            g.latchSlotsGated[p] = static_cast<std::uint8_t>(
                cfg.issueWidth - act.latchFlux[p]);
        }
    }
    g.dcachePortsGated = static_cast<std::uint8_t>(
        cfg.dcachePorts - act.dcachePortsUsed);
    g.resultBusesGated = static_cast<std::uint8_t>(
        cfg.numResultBuses - act.resultBusUsed);
    return g;
}

} // namespace

TEST(PowerModel, IdleUngatedCycleBurnsClockPower)
{
    Harness h;
    h.model.tick(CycleActivity{}, GateState{});
    EXPECT_GT(h.model.totalEnergyPJ(), 0.0);
    EXPECT_GT(h.model.energyPJ(PowerComponent::Latches), 0.0);
    EXPECT_GT(h.model.energyPJ(PowerComponent::ClockWiring), 0.0);
    EXPECT_GT(h.model.energyPJ(PowerComponent::IntAlu), 0.0);
    // No accesses -> no array energy.
    EXPECT_DOUBLE_EQ(h.model.energyPJ(PowerComponent::DcacheArray), 0.0);
    EXPECT_DOUBLE_EQ(h.model.energyPJ(PowerComponent::Regfile), 0.0);
}

TEST(PowerModel, BaselineEnergyIsCycleInvariant)
{
    // With no gating, the clocked portion is identical every cycle.
    Harness h;
    h.model.tick(CycleActivity{}, GateState{});
    const double e1 = h.model.totalEnergyPJ();
    h.model.tick(CycleActivity{}, GateState{});
    EXPECT_NEAR(h.model.totalEnergyPJ(), 2 * e1, 1e-9);
}

TEST(PowerModel, FullDcgGatingOnIdleCycleSavesALot)
{
    Harness a, b;
    const CycleActivity idle{};
    a.model.tick(idle, GateState{});
    b.model.tick(idle, dcgStyleGates(b.cfg, idle));
    EXPECT_LT(b.model.totalEnergyPJ(), a.model.totalEnergyPJ() * 0.8);
    // Ungated components are unaffected.
    EXPECT_DOUBLE_EQ(b.model.energyPJ(PowerComponent::ClockWiring),
                     a.model.energyPJ(PowerComponent::ClockWiring));
    EXPECT_DOUBLE_EQ(b.model.energyPJ(PowerComponent::IssueQueue),
                     a.model.energyPJ(PowerComponent::IssueQueue));
}

TEST(PowerModel, GatingBusyUnitDies)
{
    Harness h;
    CycleActivity act;
    act.fuBusyMask[0] = 0b1;
    GateState g;
    g.fuGateMask[0] = 0b1;
    EXPECT_DEATH(h.model.tick(act, g), "gated a busy");
}

TEST(PowerModel, GatingUsedLatchSlotsDies)
{
    Harness h;
    CycleActivity act;
    act.latchFlux[4] = 6;
    GateState g;
    g.latchSlotsGated[4] = 4;  // 6 + 4 > 8
    EXPECT_DEATH(h.model.tick(act, g), "latch slots");
}

TEST(PowerModel, GatingUsedPortDies)
{
    Harness h;
    CycleActivity act;
    act.dcachePortsUsed = 2;
    GateState g;
    g.dcachePortsGated = 1;
    EXPECT_DEATH(h.model.tick(act, g), "busy D-cache port");
}

TEST(PowerModel, GatingUsedBusDies)
{
    Harness h;
    CycleActivity act;
    act.resultBusUsed = 8;
    GateState g;
    g.resultBusesGated = 1;
    EXPECT_DEATH(h.model.tick(act, g), "busy result bus");
}

TEST(PowerModel, ActivityAddsAccessEnergy)
{
    Harness a, b;
    CycleActivity act;
    act.dcacheAccesses = 2;
    act.regReads = 4;
    act.regWrites = 2;
    act.renamed = 8;
    act.icacheAccesses = 1;
    a.model.tick(CycleActivity{}, GateState{});
    b.model.tick(act, GateState{});
    EXPECT_GT(b.model.energyPJ(PowerComponent::DcacheArray), 0.0);
    EXPECT_GT(b.model.energyPJ(PowerComponent::Regfile), 0.0);
    EXPECT_GT(b.model.totalEnergyPJ(), a.model.totalEnergyPJ());
}

TEST(PowerModel, FuOpEnergyOnTopOfClock)
{
    Harness a, b;
    CycleActivity busy;
    busy.fuBusyMask[0] = 0b111;
    busy.fuStarts[0] = 3;
    a.model.tick(CycleActivity{}, GateState{});
    b.model.tick(busy, GateState{});
    EXPECT_GT(b.model.energyPJ(PowerComponent::IntAlu),
              a.model.energyPJ(PowerComponent::IntAlu));
}

TEST(PowerModel, IqGatedFractionScalesIssueQueueClock)
{
    Harness a, b;
    GateState half;
    half.iqGatedFraction = 0.5;
    a.model.tick(CycleActivity{}, GateState{});
    b.model.tick(CycleActivity{}, half);
    // Halving the clocked fraction halves the IQ clock energy (no
    // wakeup/select activity here).
    EXPECT_NEAR(b.model.energyPJ(PowerComponent::IssueQueue),
                a.model.energyPJ(PowerComponent::IssueQueue) * 0.5,
                1e-9);
}

TEST(PowerModel, DcgControlOverheadAboutOnePercentOfLatchPower)
{
    // Sec 5.3: the extended latches "account for merely 1% of total
    // latch power".
    Harness h;
    GateState g;
    g.dcgControlActive = true;
    h.model.tick(CycleActivity{}, g);
    const double latch = h.model.energyPJ(PowerComponent::Latches);
    const double ctl = h.model.energyPJ(PowerComponent::DcgControl);
    EXPECT_GT(ctl, 0.0);
    EXPECT_LT(ctl / latch, 0.03);
    EXPECT_GT(ctl / latch, 0.003);
}

TEST(PowerModel, GroupAccessorsSumComponents)
{
    Harness h;
    GateState g;
    g.dcgControlActive = true;
    h.model.tick(CycleActivity{}, g);
    EXPECT_DOUBLE_EQ(h.model.intUnitsEnergyPJ(),
                     h.model.energyPJ(PowerComponent::IntAlu) +
                     h.model.energyPJ(PowerComponent::IntMulDiv));
    EXPECT_DOUBLE_EQ(h.model.latchEnergyPJ(),
                     h.model.energyPJ(PowerComponent::Latches) +
                     h.model.energyPJ(PowerComponent::DcgControl));
    EXPECT_DOUBLE_EQ(h.model.dcacheEnergyPJ(),
                     h.model.energyPJ(PowerComponent::DcacheDecoder) +
                     h.model.energyPJ(PowerComponent::DcacheArray));
}

TEST(PowerModel, TotalIsSumOfComponents)
{
    Harness h;
    CycleActivity act;
    act.dcacheAccesses = 1;
    act.issued = 4;
    act.iqWakeups = 2;
    h.model.tick(act, GateState{});
    double sum = 0.0;
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        sum += h.model.energyPJ(static_cast<PowerComponent>(c));
    EXPECT_NEAR(h.model.totalEnergyPJ(), sum, 1e-6);
}

TEST(PowerModel, ResetZeroesEnergies)
{
    Harness h;
    h.model.tick(CycleActivity{}, GateState{});
    h.model.reset();
    EXPECT_DOUBLE_EQ(h.model.totalEnergyPJ(), 0.0);
    EXPECT_EQ(h.model.cycles(), 0u);
}

TEST(PowerModel, DeeperPipelineHasMoreLatchPower)
{
    StatRegistry s1, s2;
    CoreConfig shallow;
    CoreConfig deep;
    deep.depth = deepPipeline();
    Technology tech;
    PowerModel m1(shallow, tech, s1), m2(deep, tech, s2);
    m1.tick(CycleActivity{}, GateState{});
    m2.tick(CycleActivity{}, GateState{});
    EXPECT_GT(m2.energyPJ(PowerComponent::Latches),
              m1.energyPJ(PowerComponent::Latches) * 2.0);
}

TEST(PowerModel, AveragePowerIsPlausibleForTable1)
{
    // A fully-clocked idle 8-wide machine at 0.18um/1GHz should land in
    // the tens of watts (Wattch-era numbers), not milliwatts or kW.
    Harness h;
    for (int i = 0; i < 100; ++i)
        h.model.tick(CycleActivity{}, GateState{});
    EXPECT_GT(h.model.averagePowerW(), 5.0);
    EXPECT_LT(h.model.averagePowerW(), 100.0);
}
