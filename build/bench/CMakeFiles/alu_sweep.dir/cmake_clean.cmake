file(REMOVE_RECURSE
  "CMakeFiles/alu_sweep.dir/alu_sweep.cc.o"
  "CMakeFiles/alu_sweep.dir/alu_sweep.cc.o.d"
  "alu_sweep"
  "alu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
