# Empty compiler generated dependencies file for alu_sweep.
# This may be replaced when dependencies are built.
