# Empty dependencies file for fig14_latches.
# This may be replaced when dependencies are built.
