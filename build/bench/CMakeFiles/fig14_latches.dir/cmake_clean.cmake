file(REMOVE_RECURSE
  "CMakeFiles/fig14_latches.dir/fig14_latches.cc.o"
  "CMakeFiles/fig14_latches.dir/fig14_latches.cc.o.d"
  "fig14_latches"
  "fig14_latches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_latches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
