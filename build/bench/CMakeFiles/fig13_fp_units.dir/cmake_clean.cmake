file(REMOVE_RECURSE
  "CMakeFiles/fig13_fp_units.dir/fig13_fp_units.cc.o"
  "CMakeFiles/fig13_fp_units.dir/fig13_fp_units.cc.o.d"
  "fig13_fp_units"
  "fig13_fp_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fp_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
