# Empty compiler generated dependencies file for fig13_fp_units.
# This may be replaced when dependencies are built.
