file(REMOVE_RECURSE
  "CMakeFiles/fig15_dcache.dir/fig15_dcache.cc.o"
  "CMakeFiles/fig15_dcache.dir/fig15_dcache.cc.o.d"
  "fig15_dcache"
  "fig15_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
