# Empty compiler generated dependencies file for fig15_dcache.
# This may be replaced when dependencies are built.
