# Empty dependencies file for dcg_bench_harness.
# This may be replaced when dependencies are built.
