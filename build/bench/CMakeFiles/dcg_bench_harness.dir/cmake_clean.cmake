file(REMOVE_RECURSE
  "CMakeFiles/dcg_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dcg_bench_harness.dir/harness.cc.o.d"
  "libdcg_bench_harness.a"
  "libdcg_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
