file(REMOVE_RECURSE
  "libdcg_bench_harness.a"
)
