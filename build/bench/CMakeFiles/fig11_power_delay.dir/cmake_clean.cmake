file(REMOVE_RECURSE
  "CMakeFiles/fig11_power_delay.dir/fig11_power_delay.cc.o"
  "CMakeFiles/fig11_power_delay.dir/fig11_power_delay.cc.o.d"
  "fig11_power_delay"
  "fig11_power_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_power_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
