# Empty dependencies file for fig11_power_delay.
# This may be replaced when dependencies are built.
