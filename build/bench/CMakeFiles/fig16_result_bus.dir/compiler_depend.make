# Empty compiler generated dependencies file for fig16_result_bus.
# This may be replaced when dependencies are built.
