file(REMOVE_RECURSE
  "CMakeFiles/fig16_result_bus.dir/fig16_result_bus.cc.o"
  "CMakeFiles/fig16_result_bus.dir/fig16_result_bus.cc.o.d"
  "fig16_result_bus"
  "fig16_result_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_result_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
