file(REMOVE_RECURSE
  "CMakeFiles/ablation_bpred.dir/ablation_bpred.cc.o"
  "CMakeFiles/ablation_bpred.dir/ablation_bpred.cc.o.d"
  "ablation_bpred"
  "ablation_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
