# Empty compiler generated dependencies file for ablation_bpred.
# This may be replaced when dependencies are built.
