
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_deep_pipeline.cc" "bench/CMakeFiles/fig17_deep_pipeline.dir/fig17_deep_pipeline.cc.o" "gcc" "bench/CMakeFiles/fig17_deep_pipeline.dir/fig17_deep_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dcg_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gating/CMakeFiles/dcg_gating.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dcg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/dcg_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dcg_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dcg_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dcg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
