# Empty dependencies file for fig17_deep_pipeline.
# This may be replaced when dependencies are built.
