file(REMOVE_RECURSE
  "CMakeFiles/fig17_deep_pipeline.dir/fig17_deep_pipeline.cc.o"
  "CMakeFiles/fig17_deep_pipeline.dir/fig17_deep_pipeline.cc.o.d"
  "fig17_deep_pipeline"
  "fig17_deep_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_deep_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
