file(REMOVE_RECURSE
  "CMakeFiles/fig10_total_power.dir/fig10_total_power.cc.o"
  "CMakeFiles/fig10_total_power.dir/fig10_total_power.cc.o.d"
  "fig10_total_power"
  "fig10_total_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_total_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
