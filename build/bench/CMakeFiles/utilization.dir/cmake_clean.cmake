file(REMOVE_RECURSE
  "CMakeFiles/utilization.dir/utilization.cc.o"
  "CMakeFiles/utilization.dir/utilization.cc.o.d"
  "utilization"
  "utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
