file(REMOVE_RECURSE
  "CMakeFiles/ablation_store_delay.dir/ablation_store_delay.cc.o"
  "CMakeFiles/ablation_store_delay.dir/ablation_store_delay.cc.o.d"
  "ablation_store_delay"
  "ablation_store_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_store_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
