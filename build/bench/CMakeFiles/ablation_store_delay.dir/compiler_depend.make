# Empty compiler generated dependencies file for ablation_store_delay.
# This may be replaced when dependencies are built.
