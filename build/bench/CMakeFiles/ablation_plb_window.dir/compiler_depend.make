# Empty compiler generated dependencies file for ablation_plb_window.
# This may be replaced when dependencies are built.
