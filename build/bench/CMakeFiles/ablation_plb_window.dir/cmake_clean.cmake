file(REMOVE_RECURSE
  "CMakeFiles/ablation_plb_window.dir/ablation_plb_window.cc.o"
  "CMakeFiles/ablation_plb_window.dir/ablation_plb_window.cc.o.d"
  "ablation_plb_window"
  "ablation_plb_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plb_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
