# Empty dependencies file for validation_power_model.
# This may be replaced when dependencies are built.
