file(REMOVE_RECURSE
  "CMakeFiles/validation_power_model.dir/validation_power_model.cc.o"
  "CMakeFiles/validation_power_model.dir/validation_power_model.cc.o.d"
  "validation_power_model"
  "validation_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
