# Empty dependencies file for fig12_int_units.
# This may be replaced when dependencies are built.
