file(REMOVE_RECURSE
  "CMakeFiles/fig12_int_units.dir/fig12_int_units.cc.o"
  "CMakeFiles/fig12_int_units.dir/fig12_int_units.cc.o.d"
  "fig12_int_units"
  "fig12_int_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_int_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
