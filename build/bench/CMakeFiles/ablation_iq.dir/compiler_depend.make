# Empty compiler generated dependencies file for ablation_iq.
# This may be replaced when dependencies are built.
