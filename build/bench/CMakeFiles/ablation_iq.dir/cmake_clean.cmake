file(REMOVE_RECURSE
  "CMakeFiles/ablation_iq.dir/ablation_iq.cc.o"
  "CMakeFiles/ablation_iq.dir/ablation_iq.cc.o.d"
  "ablation_iq"
  "ablation_iq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
