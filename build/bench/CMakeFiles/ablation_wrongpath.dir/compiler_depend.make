# Empty compiler generated dependencies file for ablation_wrongpath.
# This may be replaced when dependencies are built.
