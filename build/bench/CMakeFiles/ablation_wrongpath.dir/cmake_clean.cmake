file(REMOVE_RECURSE
  "CMakeFiles/ablation_wrongpath.dir/ablation_wrongpath.cc.o"
  "CMakeFiles/ablation_wrongpath.dir/ablation_wrongpath.cc.o.d"
  "ablation_wrongpath"
  "ablation_wrongpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wrongpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
