file(REMOVE_RECURSE
  "CMakeFiles/deep_pipeline_study.dir/deep_pipeline_study.cpp.o"
  "CMakeFiles/deep_pipeline_study.dir/deep_pipeline_study.cpp.o.d"
  "deep_pipeline_study"
  "deep_pipeline_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_pipeline_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
