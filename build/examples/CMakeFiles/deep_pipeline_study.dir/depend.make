# Empty dependencies file for deep_pipeline_study.
# This may be replaced when dependencies are built.
