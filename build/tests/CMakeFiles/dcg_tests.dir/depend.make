# Empty dependencies file for dcg_tests.
# This may be replaced when dependencies are built.
