
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/branch/bimodal_test.cc" "tests/CMakeFiles/dcg_tests.dir/branch/bimodal_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/branch/bimodal_test.cc.o.d"
  "/root/repo/tests/branch/btb_test.cc" "tests/CMakeFiles/dcg_tests.dir/branch/btb_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/branch/btb_test.cc.o.d"
  "/root/repo/tests/branch/predictor_test.cc" "tests/CMakeFiles/dcg_tests.dir/branch/predictor_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/branch/predictor_test.cc.o.d"
  "/root/repo/tests/branch/ras_test.cc" "tests/CMakeFiles/dcg_tests.dir/branch/ras_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/branch/ras_test.cc.o.d"
  "/root/repo/tests/branch/two_level_test.cc" "tests/CMakeFiles/dcg_tests.dir/branch/two_level_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/branch/two_level_test.cc.o.d"
  "/root/repo/tests/cache/cache_test.cc" "tests/CMakeFiles/dcg_tests.dir/cache/cache_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/cache/cache_test.cc.o.d"
  "/root/repo/tests/cache/hierarchy_test.cc" "tests/CMakeFiles/dcg_tests.dir/cache/hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/cache/hierarchy_test.cc.o.d"
  "/root/repo/tests/common/delay_queue_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/delay_queue_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/delay_queue_test.cc.o.d"
  "/root/repo/tests/common/log_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/log_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/log_test.cc.o.d"
  "/root/repo/tests/common/options_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/options_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/options_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/table_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/table_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/table_test.cc.o.d"
  "/root/repo/tests/common/timing_wheel_test.cc" "tests/CMakeFiles/dcg_tests.dir/common/timing_wheel_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/common/timing_wheel_test.cc.o.d"
  "/root/repo/tests/gating/dcg_test.cc" "tests/CMakeFiles/dcg_tests.dir/gating/dcg_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/gating/dcg_test.cc.o.d"
  "/root/repo/tests/gating/plb_test.cc" "tests/CMakeFiles/dcg_tests.dir/gating/plb_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/gating/plb_test.cc.o.d"
  "/root/repo/tests/isa/op_class_test.cc" "tests/CMakeFiles/dcg_tests.dir/isa/op_class_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/isa/op_class_test.cc.o.d"
  "/root/repo/tests/pipeline/activity_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/activity_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/activity_test.cc.o.d"
  "/root/repo/tests/pipeline/config_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/config_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/config_test.cc.o.d"
  "/root/repo/tests/pipeline/core_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/core_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/core_test.cc.o.d"
  "/root/repo/tests/pipeline/fu_pool_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/fu_pool_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/fu_pool_test.cc.o.d"
  "/root/repo/tests/pipeline/iq_occupancy_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/iq_occupancy_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/iq_occupancy_test.cc.o.d"
  "/root/repo/tests/pipeline/lsq_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/lsq_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/lsq_test.cc.o.d"
  "/root/repo/tests/pipeline/rob_test.cc" "tests/CMakeFiles/dcg_tests.dir/pipeline/rob_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/pipeline/rob_test.cc.o.d"
  "/root/repo/tests/power/array_model_test.cc" "tests/CMakeFiles/dcg_tests.dir/power/array_model_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/power/array_model_test.cc.o.d"
  "/root/repo/tests/power/derived_test.cc" "tests/CMakeFiles/dcg_tests.dir/power/derived_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/power/derived_test.cc.o.d"
  "/root/repo/tests/power/model_test.cc" "tests/CMakeFiles/dcg_tests.dir/power/model_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/power/model_test.cc.o.d"
  "/root/repo/tests/power/technology_test.cc" "tests/CMakeFiles/dcg_tests.dir/power/technology_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/power/technology_test.cc.o.d"
  "/root/repo/tests/sim/integration_test.cc" "tests/CMakeFiles/dcg_tests.dir/sim/integration_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/sim/integration_test.cc.o.d"
  "/root/repo/tests/sim/report_test.cc" "tests/CMakeFiles/dcg_tests.dir/sim/report_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/sim/report_test.cc.o.d"
  "/root/repo/tests/sim/simulator_test.cc" "tests/CMakeFiles/dcg_tests.dir/sim/simulator_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/sim/simulator_test.cc.o.d"
  "/root/repo/tests/trace/generator_test.cc" "tests/CMakeFiles/dcg_tests.dir/trace/generator_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/trace/generator_test.cc.o.d"
  "/root/repo/tests/trace/memory_model_test.cc" "tests/CMakeFiles/dcg_tests.dir/trace/memory_model_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/trace/memory_model_test.cc.o.d"
  "/root/repo/tests/trace/spec2000_test.cc" "tests/CMakeFiles/dcg_tests.dir/trace/spec2000_test.cc.o" "gcc" "tests/CMakeFiles/dcg_tests.dir/trace/spec2000_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gating/CMakeFiles/dcg_gating.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dcg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/dcg_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dcg_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dcg_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dcg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
