file(REMOVE_RECURSE
  "libdcg_gating.a"
)
