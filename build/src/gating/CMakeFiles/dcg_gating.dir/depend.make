# Empty dependencies file for dcg_gating.
# This may be replaced when dependencies are built.
