file(REMOVE_RECURSE
  "CMakeFiles/dcg_gating.dir/dcg.cc.o"
  "CMakeFiles/dcg_gating.dir/dcg.cc.o.d"
  "CMakeFiles/dcg_gating.dir/plb.cc.o"
  "CMakeFiles/dcg_gating.dir/plb.cc.o.d"
  "libdcg_gating.a"
  "libdcg_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
