file(REMOVE_RECURSE
  "CMakeFiles/dcg_trace.dir/generator.cc.o"
  "CMakeFiles/dcg_trace.dir/generator.cc.o.d"
  "CMakeFiles/dcg_trace.dir/profile.cc.o"
  "CMakeFiles/dcg_trace.dir/profile.cc.o.d"
  "CMakeFiles/dcg_trace.dir/spec2000.cc.o"
  "CMakeFiles/dcg_trace.dir/spec2000.cc.o.d"
  "libdcg_trace.a"
  "libdcg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
