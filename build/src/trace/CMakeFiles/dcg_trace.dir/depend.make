# Empty dependencies file for dcg_trace.
# This may be replaced when dependencies are built.
