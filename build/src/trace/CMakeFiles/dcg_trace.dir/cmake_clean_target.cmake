file(REMOVE_RECURSE
  "libdcg_trace.a"
)
