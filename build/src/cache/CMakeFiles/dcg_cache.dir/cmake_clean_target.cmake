file(REMOVE_RECURSE
  "libdcg_cache.a"
)
