file(REMOVE_RECURSE
  "CMakeFiles/dcg_cache.dir/cache.cc.o"
  "CMakeFiles/dcg_cache.dir/cache.cc.o.d"
  "CMakeFiles/dcg_cache.dir/hierarchy.cc.o"
  "CMakeFiles/dcg_cache.dir/hierarchy.cc.o.d"
  "libdcg_cache.a"
  "libdcg_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
