# Empty compiler generated dependencies file for dcg_cache.
# This may be replaced when dependencies are built.
