file(REMOVE_RECURSE
  "CMakeFiles/dcg_sim.dir/presets.cc.o"
  "CMakeFiles/dcg_sim.dir/presets.cc.o.d"
  "CMakeFiles/dcg_sim.dir/report.cc.o"
  "CMakeFiles/dcg_sim.dir/report.cc.o.d"
  "CMakeFiles/dcg_sim.dir/simulator.cc.o"
  "CMakeFiles/dcg_sim.dir/simulator.cc.o.d"
  "libdcg_sim.a"
  "libdcg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
