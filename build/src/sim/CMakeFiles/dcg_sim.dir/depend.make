# Empty dependencies file for dcg_sim.
# This may be replaced when dependencies are built.
