file(REMOVE_RECURSE
  "libdcg_sim.a"
)
