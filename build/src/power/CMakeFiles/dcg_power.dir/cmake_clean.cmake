file(REMOVE_RECURSE
  "CMakeFiles/dcg_power.dir/array_model.cc.o"
  "CMakeFiles/dcg_power.dir/array_model.cc.o.d"
  "CMakeFiles/dcg_power.dir/derived.cc.o"
  "CMakeFiles/dcg_power.dir/derived.cc.o.d"
  "CMakeFiles/dcg_power.dir/model.cc.o"
  "CMakeFiles/dcg_power.dir/model.cc.o.d"
  "libdcg_power.a"
  "libdcg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
