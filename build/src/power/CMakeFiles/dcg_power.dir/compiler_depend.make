# Empty compiler generated dependencies file for dcg_power.
# This may be replaced when dependencies are built.
