file(REMOVE_RECURSE
  "libdcg_power.a"
)
