file(REMOVE_RECURSE
  "CMakeFiles/dcg_isa.dir/op_class.cc.o"
  "CMakeFiles/dcg_isa.dir/op_class.cc.o.d"
  "libdcg_isa.a"
  "libdcg_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
