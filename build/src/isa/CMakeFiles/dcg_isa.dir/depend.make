# Empty dependencies file for dcg_isa.
# This may be replaced when dependencies are built.
