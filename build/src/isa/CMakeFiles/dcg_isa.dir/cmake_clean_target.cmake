file(REMOVE_RECURSE
  "libdcg_isa.a"
)
