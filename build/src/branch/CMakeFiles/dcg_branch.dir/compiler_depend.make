# Empty compiler generated dependencies file for dcg_branch.
# This may be replaced when dependencies are built.
