file(REMOVE_RECURSE
  "libdcg_branch.a"
)
