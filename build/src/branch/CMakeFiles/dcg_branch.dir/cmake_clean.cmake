file(REMOVE_RECURSE
  "CMakeFiles/dcg_branch.dir/bimodal.cc.o"
  "CMakeFiles/dcg_branch.dir/bimodal.cc.o.d"
  "CMakeFiles/dcg_branch.dir/btb.cc.o"
  "CMakeFiles/dcg_branch.dir/btb.cc.o.d"
  "CMakeFiles/dcg_branch.dir/predictor.cc.o"
  "CMakeFiles/dcg_branch.dir/predictor.cc.o.d"
  "CMakeFiles/dcg_branch.dir/ras.cc.o"
  "CMakeFiles/dcg_branch.dir/ras.cc.o.d"
  "CMakeFiles/dcg_branch.dir/two_level.cc.o"
  "CMakeFiles/dcg_branch.dir/two_level.cc.o.d"
  "libdcg_branch.a"
  "libdcg_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
