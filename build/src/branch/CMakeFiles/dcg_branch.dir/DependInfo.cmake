
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/bimodal.cc" "src/branch/CMakeFiles/dcg_branch.dir/bimodal.cc.o" "gcc" "src/branch/CMakeFiles/dcg_branch.dir/bimodal.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/branch/CMakeFiles/dcg_branch.dir/btb.cc.o" "gcc" "src/branch/CMakeFiles/dcg_branch.dir/btb.cc.o.d"
  "/root/repo/src/branch/predictor.cc" "src/branch/CMakeFiles/dcg_branch.dir/predictor.cc.o" "gcc" "src/branch/CMakeFiles/dcg_branch.dir/predictor.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/branch/CMakeFiles/dcg_branch.dir/ras.cc.o" "gcc" "src/branch/CMakeFiles/dcg_branch.dir/ras.cc.o.d"
  "/root/repo/src/branch/two_level.cc" "src/branch/CMakeFiles/dcg_branch.dir/two_level.cc.o" "gcc" "src/branch/CMakeFiles/dcg_branch.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
