file(REMOVE_RECURSE
  "libdcg_pipeline.a"
)
