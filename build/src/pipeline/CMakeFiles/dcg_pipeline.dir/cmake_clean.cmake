file(REMOVE_RECURSE
  "CMakeFiles/dcg_pipeline.dir/config.cc.o"
  "CMakeFiles/dcg_pipeline.dir/config.cc.o.d"
  "CMakeFiles/dcg_pipeline.dir/core.cc.o"
  "CMakeFiles/dcg_pipeline.dir/core.cc.o.d"
  "CMakeFiles/dcg_pipeline.dir/fu_pool.cc.o"
  "CMakeFiles/dcg_pipeline.dir/fu_pool.cc.o.d"
  "libdcg_pipeline.a"
  "libdcg_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
