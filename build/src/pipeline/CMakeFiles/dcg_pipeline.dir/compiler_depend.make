# Empty compiler generated dependencies file for dcg_pipeline.
# This may be replaced when dependencies are built.
