file(REMOVE_RECURSE
  "libdcg_common.a"
)
