# Empty compiler generated dependencies file for dcg_common.
# This may be replaced when dependencies are built.
