file(REMOVE_RECURSE
  "CMakeFiles/dcg_common.dir/log.cc.o"
  "CMakeFiles/dcg_common.dir/log.cc.o.d"
  "CMakeFiles/dcg_common.dir/options.cc.o"
  "CMakeFiles/dcg_common.dir/options.cc.o.d"
  "CMakeFiles/dcg_common.dir/rng.cc.o"
  "CMakeFiles/dcg_common.dir/rng.cc.o.d"
  "CMakeFiles/dcg_common.dir/stats.cc.o"
  "CMakeFiles/dcg_common.dir/stats.cc.o.d"
  "CMakeFiles/dcg_common.dir/table.cc.o"
  "CMakeFiles/dcg_common.dir/table.cc.o.d"
  "libdcg_common.a"
  "libdcg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
