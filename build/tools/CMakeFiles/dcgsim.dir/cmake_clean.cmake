file(REMOVE_RECURSE
  "CMakeFiles/dcgsim.dir/dcgsim.cc.o"
  "CMakeFiles/dcgsim.dir/dcgsim.cc.o.d"
  "dcgsim"
  "dcgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
