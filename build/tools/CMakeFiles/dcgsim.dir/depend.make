# Empty dependencies file for dcgsim.
# This may be replaced when dependencies are built.
