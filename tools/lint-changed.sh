#!/usr/bin/env bash
# Fast pre-push lint: run dcglint and clang-tidy over only the files
# that changed relative to a base ref, instead of the whole tree.
#
#   tools/lint-changed.sh [BASE] [BUILD_DIR]
#
#   BASE       git ref to diff against (default: origin/main, falling
#              back to main, then HEAD~1 on a fresh clone)
#   BUILD_DIR  build tree with compile_commands.json (default: build)
#
# dcglint always analyses the WHOLE tree — cross-file checks like
# activity-counter and thread-ownership are meaningless on a partial
# view — but `--only` restricts the *report* to the changed files, so
# you see the findings your diff is responsible for. clang-tidy, which
# is genuinely per-file, runs on just the changed translation units.
#
# Exit codes: 0 clean, 1 findings, 2 setup error.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${2:-$ROOT/build}"
cd "$ROOT"

BASE="${1:-}"
if [ -z "$BASE" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
        BASE=origin/main
    elif git rev-parse --verify -q main >/dev/null; then
        BASE=main
    else
        BASE=HEAD~1
    fi
fi
MERGE_BASE=$(git merge-base "$BASE" HEAD 2>/dev/null)
if [ -z "$MERGE_BASE" ]; then
    echo "lint-changed: cannot resolve merge base with '$BASE'" >&2
    exit 2
fi

# Changed (added/modified, still existing) files vs the merge base,
# plus uncommitted changes in the working tree.
CHANGED=$( (git diff --name-only --diff-filter=d "$MERGE_BASE" HEAD;
            git diff --name-only --diff-filter=d HEAD) | sort -u)
if [ -z "$CHANGED" ]; then
    echo "lint-changed: no changes vs $BASE"
    exit 0
fi

FAIL=0

# --- dcglint: whole-tree analysis, report filtered to changed files --
LINT_FILES=$(echo "$CHANGED" | grep -E '^(src|tools)/.*\.(cc|cpp|hh|h)$' || true)
DCGLINT="$BUILD_DIR/tools/dcglint"
if [ -n "$LINT_FILES" ]; then
    if [ ! -x "$DCGLINT" ]; then
        echo "lint-changed: $DCGLINT missing; build it first" \
             "(cmake --build $BUILD_DIR --target dcglint)" >&2
        exit 2
    fi
    ONLY=$(echo "$LINT_FILES" | paste -sd, -)
    echo "lint-changed: dcglint --only=$ONLY"
    "$DCGLINT" --root="$ROOT" --require-anchors \
               --baseline="$ROOT/ci/dcglint-baseline.txt" \
               --only="$ONLY"
    RC=$?
    [ "$RC" -eq 2 ] && exit 2
    [ "$RC" -ne 0 ] && FAIL=1
else
    echo "lint-changed: no src/tools sources changed; skipping dcglint"
fi

# --- clang-tidy: per-file, changed translation units only ------------
TIDY_FILES=$(echo "$CHANGED" | \
             grep -E '^(src|tools|bench|examples)/.*\.(cc|cpp)$' || true)
TIDY="${CLANG_TIDY:-clang-tidy}"
if [ -z "$TIDY_FILES" ]; then
    echo "lint-changed: no translation units changed; skipping clang-tidy"
elif ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "lint-changed: $TIDY not found; skipping (install clang-tidy to run locally)"
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint-changed: $BUILD_DIR/compile_commands.json missing;" \
         "configure with cmake first" >&2
    exit 2
else
    # shellcheck disable=SC2086
    "$TIDY" -p "$BUILD_DIR" --quiet $TIDY_FILES 2>/dev/null \
        | grep -E ': (warning|error): ' | sort -u > /tmp/lint-changed.$$ || true
    if [ -s /tmp/lint-changed.$$ ]; then
        cat /tmp/lint-changed.$$
        echo "lint-changed: clang-tidy diagnostics on changed files" >&2
        FAIL=1
    fi
    rm -f /tmp/lint-changed.$$
fi

if [ "$FAIL" -ne 0 ]; then
    echo "lint-changed: findings on changed files" >&2
    exit 1
fi
echo "lint-changed: clean"
exit 0
