/**
 * @file
 * dcglint — project-specific static checks (see src/lint/lint.hh).
 *
 * Usage:
 *   dcglint [--root=DIR] [--check=name[,name...]] [--require-anchors]
 *           [--list-checks]
 *
 * Exit codes: 0 clean, 1 findings, 2 configuration error. CI and the
 * repo ctest run `dcglint --root=<repo> --require-anchors` so a
 * renamed anchor file fails loudly instead of silently passing.
 */

#include <iostream>
#include <string>

#include "common/options.hh"
#include "lint/lint.hh"

int
main(int argc, char **argv)
{
    dcg::Options opts(argc, argv,
                      {"root", "check", "require-anchors", "list-checks",
                       "help"});

    if (opts.has("help")) {
        std::cout <<
            "dcglint [--root=DIR (default .)]\n"
            "        [--check=name[,name...] (default: all)]\n"
            "        [--require-anchors (missing anchor file = error)]\n"
            "        [--list-checks]\n";
        return 0;
    }
    if (opts.has("list-checks")) {
        for (const std::string &name : dcg::lint::checkNames())
            std::cout << name << '\n';
        return 0;
    }

    dcg::lint::LintOptions lopts;
    lopts.root = opts.getString("root", ".");
    lopts.requireAnchors = opts.has("require-anchors");

    std::string checks = opts.getString("check", "");
    while (!checks.empty()) {
        const std::size_t comma = checks.find(',');
        const std::string name = checks.substr(0, comma);
        if (!name.empty())
            lopts.checks.push_back(name);
        if (comma == std::string::npos)
            break;
        checks.erase(0, comma + 1);
    }

    return dcg::lint::runDcglint(lopts, std::cout);
}
