/**
 * @file
 * dcglint — project-specific static checks (see src/lint/lint.hh).
 *
 * Usage:
 *   dcglint [--root=DIR] [--check=name[,name...]] [--require-anchors]
 *           [--format=text|json|sarif] [--baseline=FILE]
 *           [--only=file[,file...]] [--list-checks[=names]]
 *
 * Exit codes: 0 clean, 1 findings, 2 configuration error. CI and the
 * repo ctest run `dcglint --root=<repo> --require-anchors` so a
 * renamed anchor file fails loudly instead of silently passing.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/options.hh"
#include "lint/lint.hh"
#include "lint/registry.hh"

namespace {

/** Split a comma list; empty segments are a usage error (caller
 *  checks the returned flag). */
bool
splitCommaList(std::string csv, std::vector<std::string> &out)
{
    if (csv.empty())
        return false;
    while (true) {
        const std::size_t comma = csv.find(',');
        const std::string item = csv.substr(0, comma);
        if (item.empty())
            return false;
        out.push_back(item);
        if (comma == std::string::npos)
            return true;
        csv.erase(0, comma + 1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    dcg::Options opts(argc, argv,
                      {"root", "check", "require-anchors", "format",
                       "baseline", "only", "list-checks", "help"});

    if (opts.has("help")) {
        std::cout <<
            "dcglint [--root=DIR (default .)]\n"
            "        [--check=name[,name...] (default: all; known: " +
                dcg::lint::checkNamesJoined() + ")]\n"
            "        [--require-anchors (missing anchor file = error)]\n"
            "        [--format=text|json|sarif (default text)]\n"
            "        [--baseline=FILE (suppress known findings)]\n"
            "        [--only=file[,file...] (report only these "
                "root-relative files)]\n"
            "        [--list-checks[=names] (describe the registered "
                "checks)]\n";
        return 0;
    }
    if (opts.has("list-checks")) {
        const bool namesOnly =
            opts.getString("list-checks", "") == "names";
        for (const dcg::lint::CheckInfo &info :
             dcg::lint::checkCatalog()) {
            if (namesOnly)
                std::cout << info.name << '\n';
            else
                std::cout << info.name << " — " << info.description
                          << '\n';
        }
        return 0;
    }

    dcg::lint::LintOptions lopts;
    lopts.root = opts.getString("root", ".");
    lopts.requireAnchors = opts.has("require-anchors");
    lopts.baselineFile = opts.getString("baseline", "");

    // --check: reject empty or unknown names loudly (same UX as
    // dcgsim --scheme), listing the registered catalog.
    if (opts.has("check") &&
        !splitCommaList(opts.getString("check", ""), lopts.checks)) {
        std::cerr << "dcglint: --check needs a non-empty check name "
                     "(known: "
                  << dcg::lint::checkNamesJoined() << ")\n";
        return 2;
    }
    for (const std::string &name : lopts.checks) {
        if (!dcg::lint::isCheck(name)) {
            std::cerr << "dcglint: unknown check '" << name
                      << "' (known: "
                      << dcg::lint::checkNamesJoined() << ")\n";
            return 2;
        }
    }

    if (opts.has("only") &&
        !splitCommaList(opts.getString("only", ""), lopts.onlyFiles)) {
        std::cerr << "dcglint: --only needs a non-empty file list\n";
        return 2;
    }

    const std::string format = opts.getString("format", "text");
    if (format == "text") {
        lopts.format = dcg::lint::OutputFormat::Text;
    } else if (format == "json") {
        lopts.format = dcg::lint::OutputFormat::Json;
    } else if (format == "sarif") {
        lopts.format = dcg::lint::OutputFormat::Sarif;
    } else {
        std::cerr << "dcglint: unknown format '" << format
                  << "' (known: text|json|sarif)\n";
        return 2;
    }

    return dcg::lint::runDcglint(lopts, std::cout);
}
