/**
 * @file
 * dcgserved — the networked simulation service.
 *
 * Listens on a TCP port for newline-delimited JSON requests (see
 * serve/protocol.hh), executes jobs on a worker pool through the
 * shared experiment Engine, and — with --store — persists every
 * result in an on-disk store so a restarted server answers previously
 * seen jobs without simulating at all.
 *
 * With --peers the process becomes one shard of a cluster: every node
 * names the same full ring (its own address included), job keys are
 * assigned by consistent hashing, and a submit for a peer-owned key is
 * transparently forwarded — so any node can serve any client while
 * each result is stored on exactly the shard the ring designates.
 * --replicas=K additionally keeps each record on K distinct ring
 * successors: results fan out to the follower holders in the
 * background, a key whose primary is down is served by a surviving
 * holder (failover), and a holder that lost its copy pulls it back
 * from a sibling (read-repair).
 *
 * Membership is elastic (protocol v5): the ring is versioned by
 * epochs, and the admin verbs `join`/`leave` (see `dcgsim --join`)
 * add or remove a node at runtime — only the remapped ~1/N of arcs
 * move, and requests keep being answered throughout via dual-epoch
 * routing. A standalone node started with --self is join-able by that
 * canonical address.
 *
 * Examples:
 *   dcgserved --port=7878 --store=/var/tmp/dcg-results
 *   dcgserved --port=0 --jobs=8 --queue-cap=64   # ephemeral port
 *   dcgserved --port=7878 --store=s1 \
 *             --peers=127.0.0.1:7878,127.0.0.1:7879   # shard 1 of 2
 *   dcgserved --port=7878 --store=s1 --replicas=2 \
 *             --peers=127.0.0.1:7878,127.0.0.1:7879,127.0.0.1:7880
 *
 * SIGINT/SIGTERM triggers a graceful drain: queued and running jobs
 * finish, responses flush, then the process exits 0.
 *
 * Signal handling uses the self-pipe pattern end to end: the handler
 * does no work beyond Server::requestStop(), which is limited to an
 * atomic flag store plus one write() to the server's wake pipe — both
 * async-signal-safe — and the poll() loop notices the flag on the
 * next wakeup. The handler also preserves errno, and the server
 * pointer it dereferences is a lock-free atomic so handler and main
 * thread never race on it.
 *
 * The first stdout line is "dcgserved: listening on HOST:PORT" so
 * scripts (and the CI loopback smoke job) can scrape the actual port
 * when started with --port=0.
 */

#include <cerrno>
#include <csignal>
#include <cstring>

#include <atomic>
#include <iostream>

#include "common/log.hh"
#include "common/options.hh"
#include "serve/server.hh"

using namespace dcg;

namespace {

std::atomic<serve::Server *> gServer{nullptr};
static_assert(std::atomic<serve::Server *>::is_always_lock_free,
              "signal handler needs a lock-free server pointer");

extern "C" void
onSignal(int)
{
    // Async-signal-safe only: atomic load/store and write(2). Keep
    // errno unchanged in case we interrupted a syscall whose caller
    // is mid errno-check.
    const int saved_errno = errno;
    if (serve::Server *s = gServer.load(std::memory_order_acquire))
        s->requestStop();
    errno = saved_errno;
}

/** Install @p handler for SIGINT/SIGTERM via sigaction (no SA_RESTART:
 *  poll() must return early so the drain starts immediately). */
void
installSignalHandlers(void (*handler)(int))
{
    struct sigaction sa = {};
    sa.sa_handler = handler;
    if (sigemptyset(&sa.sa_mask) != 0 ||
        sigaction(SIGINT, &sa, nullptr) != 0 ||
        sigaction(SIGTERM, &sa, nullptr) != 0)
        fatal("dcgserved: cannot install signal handlers: ",
              std::strerror(errno));
}

/** Strict non-negative integer option; fatal() with a clear message. */
std::int64_t
checkedCount(const Options &opts, const std::string &key,
             std::int64_t def, std::int64_t min)
{
    if (!opts.has(key))
        return def;
    const std::string raw = opts.getString(key, "");
    std::int64_t v = 0;
    if (!Options::parseInt(raw, v) || v < min)
        fatal("invalid --", key, "='", raw, "': expected an integer >= ",
              min);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv,
                 {"host", "port", "jobs", "queue-cap", "store",
                  "store-budget-bytes", "cache-budget-bytes", "peers",
                  "self", "replicas", "peer-timeout-ms",
                  "retry-after-ms", "drain-grace-ms", "help"});

    if (opts.has("help")) {
        std::cout <<
            "dcgserved [--host=ADDR] [--port=N (0 = ephemeral)]\n"
            "          [--jobs=N (workers; default DCG_JOBS or all"
            " cores)]\n"
            "          [--queue-cap=N (bounded job queue; default"
            " 256)]\n"
            "          [--store=DIR (persistent result store)]\n"
            "          [--store-budget-bytes=N (LRU-evict the store"
            " past N bytes)]\n"
            "          [--cache-budget-bytes=N (LRU-evict the in-memory"
            " cache)]\n"
            "          [--peers=HOST:PORT[,HOST:PORT...] (the full"
            " cluster ring,\n"
            "           this node included; enables sharding)]\n"
            "          [--self=HOST:PORT (this node's ring address;"
            " default\n"
            "           --host:--port; usable without --peers to make"
            " a\n"
            "           standalone node join-able by its canonical"
            " name)]\n"
            "          [--replicas=K (copies per key across the ring;"
            " needs\n"
            "           --peers and --store; default 1)]\n"
            "          [--peer-timeout-ms=N (per-request deadline on"
            " the\n"
            "           multiplexed peer links — forwards, replicate"
            " pushes,\n"
            "           fetches — and the bound on peer connect;"
            " default\n"
            "           0 = no deadline, connects capped at 10s)]\n"
            "          [--retry-after-ms=N] [--drain-grace-ms=N]\n";
        return 0;
    }

    serve::ServerConfig cfg;
    cfg.host = opts.getString("host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(
        checkedCount(opts, "port", 0, 0));
    cfg.workers = static_cast<unsigned>(
        checkedCount(opts, "jobs", 0, 0));
    cfg.queueCapacity = static_cast<std::size_t>(
        checkedCount(opts, "queue-cap", 256, 1));
    cfg.storeDir = opts.getString("store", "");
    cfg.storeBudgetBytes = static_cast<std::uint64_t>(
        checkedCount(opts, "store-budget-bytes", 0, 0));
    cfg.cacheBudgetBytes = static_cast<std::uint64_t>(
        checkedCount(opts, "cache-budget-bytes", 0, 0));
    cfg.retryAfterMs = static_cast<unsigned>(
        checkedCount(opts, "retry-after-ms", 250, 1));
    cfg.drainGraceMs = static_cast<unsigned>(
        checkedCount(opts, "drain-grace-ms", 5000, 0));
    cfg.replicas = static_cast<unsigned>(
        checkedCount(opts, "replicas", 1, 1));
    cfg.peerTimeoutMs = static_cast<unsigned>(
        checkedCount(opts, "peer-timeout-ms", 0, 0));

    if (cfg.replicas > 1) {
        if (!opts.has("peers"))
            fatal("--replicas needs --peers (a cluster to replicate"
                  " across)");
        if (cfg.storeDir.empty())
            fatal("--replicas needs --store (replicas are persistent"
                  " records)");
    }

    // --self stands on its own now: a standalone node launched with a
    // canonical address is what a live `join` adds to a ring.
    if (opts.has("self")) {
        serve::Endpoint self;
        std::string serr;
        if (!serve::parseEndpoint(opts.getString("self", ""), self,
                                  serr))
            fatal("invalid --self: ", serr);
        cfg.self = self.str();
    }
    if (opts.has("peers")) {
        std::string err;
        if (!serve::parseEndpoints(opts.getString("peers", ""),
                                   cfg.peers, err))
            fatal("invalid --peers list: ", err);
        if (cfg.self.empty()) {
            if (cfg.port != 0)
                cfg.self = cfg.host + ":" + std::to_string(cfg.port);
            else
                fatal("cluster mode with --port=0 needs an explicit"
                      " --self=HOST:PORT (peers cannot name an"
                      " ephemeral port)");
        }
    }

    serve::Server server(cfg);
    gServer.store(&server, std::memory_order_release);
    installSignalHandlers(onSignal);

    std::cout << "dcgserved: listening on " << cfg.host << ":"
              << server.port() << std::endl;
    if (!cfg.storeDir.empty())
        std::cout << "dcgserved: result store at " << cfg.storeDir
                  << std::endl;
    if (!cfg.peers.empty()) {
        std::cout << "dcgserved: cluster shard " << cfg.self << " of "
                  << cfg.peers.size() << " node(s)";
        if (cfg.replicas > 1)
            std::cout << ", replicas=" << cfg.replicas;
        std::cout << std::endl;
    }

    server.run();

    gServer.store(nullptr, std::memory_order_release);
    std::cout << "dcgserved: drained, exiting" << std::endl;
    return 0;
}
