/**
 * @file
 * dcgsim — command-line driver for the reproduction.
 *
 * Runs one or all benchmark models under a gating scheme with common
 * configuration overrides, prints the summary and (optionally) the
 * full statistics registry or machine-readable results.
 *
 * Runs go through the exp::Engine, so --bench=all executes the
 * benchmarks in parallel (--jobs / DCG_JOBS, default all cores) with
 * bit-identical results to a serial run.
 *
 * Examples:
 *   dcgsim --bench=mcf --scheme=dcg --dump-stats
 *   dcgsim --bench=all --scheme=plb-ext --insts=300000 --csv=out.csv
 *   dcgsim --bench=all --scheme=dcg --jobs=8 --json=out.json
 *   dcgsim --bench=gcc --scheme=dcg --depth=20 --gate-iq
 */

#include <iostream>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "sim/presets.hh"
#include "sim/report.hh"

using namespace dcg;

namespace {

GatingScheme
schemeFromName(const std::string &name)
{
    if (name == "base")
        return GatingScheme::None;
    if (name == "dcg")
        return GatingScheme::Dcg;
    if (name == "plb-orig")
        return GatingScheme::PlbOrig;
    if (name == "plb-ext")
        return GatingScheme::PlbExt;
    fatal("unknown scheme '", name,
          "' (expected base|dcg|plb-orig|plb-ext)");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv,
                 {"bench", "scheme", "insts", "warmup", "depth", "seed",
                  "gate-iq", "store-delay", "round-robin", "dump-stats",
                  "csv", "json", "jobs", "schema", "help"});

    if (opts.has("help")) {
        std::cout <<
            "dcgsim --bench=<name|all> [--scheme=base|dcg|plb-orig|"
            "plb-ext]\n"
            "       [--insts=N] [--warmup=N] [--depth=8|20] [--seed=N]\n"
            "       [--gate-iq] [--store-delay] [--round-robin]\n"
            "       [--dump-stats] [--csv=path] [--json=path]\n"
            "       [--jobs=N (parallel workers; default DCG_JOBS or"
            " all cores)]\n"
            "       [--schema (print the JSON result schema and"
            " exit)]\n";
        return 0;
    }

    if (opts.getBool("schema", false)) {
        writeResultsSchemaJson(std::cout);
        return 0;
    }

    const std::string bench = opts.getString("bench", "gzip");
    const GatingScheme scheme =
        schemeFromName(opts.getString("scheme", "dcg"));
    const auto insts = static_cast<std::uint64_t>(
        opts.getInt("insts",
                    static_cast<std::int64_t>(defaultBenchInstructions())));
    const auto warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup",
                    static_cast<std::int64_t>(defaultBenchWarmup())));
    const auto depth = static_cast<unsigned>(opts.getInt("depth", 8));

    SimConfig cfg = depth >= 20 ? deepPipelineConfig(scheme)
                                : table1Config(scheme);
    cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 1));
    cfg.dcg.gateIssueQueue = opts.getBool("gate-iq", false);
    cfg.core.delayStoresOneCycle = opts.getBool("store-delay", false);
    cfg.core.sequentialPriority = !opts.getBool("round-robin", false);

    std::vector<Profile> profiles;
    if (bench == "all")
        profiles = allSpecProfiles();
    else
        profiles.push_back(profileByName(bench));

    std::vector<RunResult> results;
    if (opts.getBool("dump-stats", false)) {
        // Dumping needs the live statistics registry, which only the
        // Simulator holds — run serially outside the engine. Matches
        // the engine's numbers via the same per-job seed derivation.
        for (const Profile &p : profiles) {
            exp::Job job = exp::makeJob(p, cfg, insts, warmup);
            SimConfig seeded = cfg;
            seeded.seed = exp::deriveJobSeed(job);
            Simulator sim(p, seeded);
            sim.run(insts, warmup);
            results.push_back(sim.result());
            std::cout << "---- statistics: " << p.name << " ----\n";
            sim.dumpStats(std::cout);
        }
    } else {
        exp::Engine engine(
            static_cast<unsigned>(opts.getInt("jobs", 0)));
        std::vector<exp::Job> jobs;
        jobs.reserve(profiles.size());
        for (const Profile &p : profiles)
            jobs.push_back(exp::makeJob(p, cfg, insts, warmup));
        results = engine.run(jobs);
    }

    TextTable t({"bench", "scheme", "IPC", "power (W)", "E/inst (pJ)",
                 "bpred%", "L1D miss%"});
    for (const RunResult &r : results) {
        t.addRow({r.benchmark, r.scheme, TextTable::num(r.ipc, 3),
                  TextTable::num(r.avgPowerW, 2),
                  TextTable::num(r.energyPerInstPJ(), 0),
                  TextTable::pct(r.branchAccuracy),
                  TextTable::pct(r.l1dMissRate)});
    }
    t.print(std::cout);

    if (opts.has("csv"))
        writeResultsCsvFile(results, opts.getString("csv", ""));
    if (opts.has("json"))
        writeResultsJsonFile(results, opts.getString("json", ""));
    return 0;
}
