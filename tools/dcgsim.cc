/**
 * @file
 * dcgsim — command-line driver for the reproduction.
 *
 * Runs one or all benchmark models under a gating scheme with common
 * configuration overrides, prints the summary and (optionally) the
 * full statistics registry or machine-readable results.
 *
 * Runs go through the exp::Engine, so --bench=all executes the
 * benchmarks in parallel (--jobs / DCG_JOBS, default all cores) with
 * bit-identical results to a serial run. With
 * --server=HOST:PORT[,HOST:PORT...] the same jobs are executed by one
 * dcgserved instance — or fanned out across a sharded cluster, each
 * job routed to the consistent-hash owner of its key — and output is
 * byte-identical either way (the request is expanded through the same
 * presets path on the server, and results round-trip bit-exactly).
 *
 * After an engine run a one-line JSON summary with the cache counters
 * goes to stderr ({"dcgsim_summary": {...}}), so sweep scripts can
 * verify dedup without parsing human-readable output.
 *
 * Examples:
 *   dcgsim --bench=mcf --scheme=dcg --dump-stats
 *   dcgsim --bench=all --scheme=plb-ext --insts=300000 --csv=out.csv
 *   dcgsim --bench=all --scheme=dcg --jobs=8 --json=out.json
 *   dcgsim --bench=all --scheme=dcg --server=127.0.0.1:7878
 *   dcgsim --bench=all --server=127.0.0.1:7878,127.0.0.1:7879
 *   dcgsim --server=127.0.0.1:7878 --server-stats
 *   dcgsim --server=127.0.0.1:7878 --join=127.0.0.1:7880
 *   dcgsim --server=127.0.0.1:7878 --ring
 */

#include <iostream>
#include <vector>

#include "common/log.hh"
#include "common/options.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "gating/registry.hh"
#include "serve/client.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

/**
 * Satellite hardening: --jobs must be a real non-negative integer.
 * 0 keeps the default resolution (DCG_JOBS, then all cores); garbage
 * or negative values are a clear fatal() instead of a silent strtoll
 * coercion to "run with some other worker count".
 */
unsigned
resolveJobsOption(const Options &opts)
{
    if (!opts.has("jobs"))
        return 0;
    const std::string raw = opts.getString("jobs", "");
    std::int64_t v = 0;
    if (!Options::parseInt(raw, v) || v < 0)
        fatal("invalid --jobs='", raw,
              "': expected a non-negative integer (0 = default worker"
              " count)");
    return static_cast<unsigned>(v);
}

/** One-line machine-readable run summary on stderr. */
void
printSummary(std::size_t jobs, const exp::Engine &engine)
{
    serve::JsonValue s = serve::JsonValue::object();
    s.set("jobs", serve::JsonValue::integer(std::uint64_t{jobs}));
    s.set("cache_hits", serve::JsonValue::integer(engine.cacheHits()));
    s.set("cache_misses",
          serve::JsonValue::integer(engine.cacheMisses()));
    s.set("cache_size",
          serve::JsonValue::integer(std::uint64_t{engine.cacheSize()}));
    s.set("disk_hits", serve::JsonValue::integer(engine.diskHits()));
    s.set("simulations",
          serve::JsonValue::integer(engine.simulations()));
    s.set("source", serve::JsonValue::string("local"));
    serve::JsonValue o = serve::JsonValue::object();
    o.set("dcgsim_summary", std::move(s));
    std::cerr << o.dump() << '\n';
}

/**
 * Build the client for --server: jobs are pipelined over one
 * persistent multiplexed link per endpoint — ring-routed to each
 * key's owner when several endpoints are given.
 */
serve::ClusterClient
makeServerClient(const Options &opts)
{
    std::vector<serve::Endpoint> eps;
    std::string err;
    if (!serve::parseEndpoints(opts.getString("server", ""), eps, err))
        fatal("invalid --server list: ", err);
    const auto replicas = static_cast<unsigned>(
        opts.getInt("replicas", 1));
    const auto timeout_ms = static_cast<unsigned>(
        opts.getInt("server-timeout-ms", 0));
    return serve::ClusterClient(std::move(eps), replicas, timeout_ms);
}

void
printServerSummary(std::size_t jobs, serve::ClientBase &client)
{
    serve::JsonValue stats = client.stats();
    serve::JsonValue s = serve::JsonValue::object();
    s.set("jobs", serve::JsonValue::integer(std::uint64_t{jobs}));
    s.set("cache_hits", stats.get("mem_hits"));
    s.set("cache_misses", stats.get("mem_misses"));
    s.set("cache_size", stats.get("cache_entries"));
    s.set("disk_hits", stats.get("disk_hits"));
    s.set("simulations", stats.get("simulations"));
    if (client.failovers() || client.readRepairs()) {
        s.set("client_failovers",
              serve::JsonValue::integer(client.failovers()));
        s.set("client_read_repairs",
              serve::JsonValue::integer(client.readRepairs()));
    }
    s.set("source", serve::JsonValue::string("server"));
    serve::JsonValue o = serve::JsonValue::object();
    o.set("dcgsim_summary", std::move(s));
    std::cerr << o.dump() << '\n';
}

/**
 * --list-schemes: the registry catalog. The bare flag prints the
 * human-readable table (name, description, config knobs);
 * --list-schemes=names prints one bare name per line for scripting
 * (the CI scheme-matrix iterates it).
 */
void
printSchemeCatalog(std::ostream &os, bool names_only)
{
    if (names_only) {
        for (const std::string &name : gating::schemeNames())
            os << name << '\n';
        return;
    }
    for (const gating::SchemeInfo &info : gating::schemeCatalog()) {
        os << info.name << "\n  " << info.description << '\n';
        for (const gating::SchemeKnob &knob : info.knobs) {
            os << "    " << knob.name << " (default "
               << knob.defaultValue << "): " << knob.description
               << '\n';
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv,
                 {"bench", "scheme", "insts", "warmup", "depth", "seed",
                  "gate-iq", "store-delay", "round-robin", "dump-stats",
                  "csv", "json", "jobs", "schema", "server",
                  "server-stats", "replicas", "server-timeout-ms",
                  "list-schemes", "join", "leave", "ring", "help"});

    if (opts.has("help")) {
        std::cout <<
            "dcgsim --bench=<name|all> [--scheme=" +
            gating::schemeNamesJoined() + "]\n"
            "       [--list-schemes[=names] (print the scheme catalog"
            " and exit)]\n"
            "       [--insts=N] [--warmup=N] [--depth=8|20] [--seed=N]\n"
            "       [--gate-iq] [--store-delay] [--round-robin]\n"
            "       [--dump-stats] [--csv=path] [--json=path]\n"
            "       [--jobs=N (parallel workers; default DCG_JOBS or"
            " all cores)]\n"
            "       [--server=HOST:PORT[,HOST:PORT...] (pipeline jobs"
            " over a\n"
            "        persistent multiplexed link to a dcgserved"
            " instance, or\n"
            "        ring-routed across a sharded cluster of them)]\n"
            "       [--replicas=K (match the cluster's --replicas;"
            " enables\n"
            "        client-side failover across each key's holders)]\n"
            "       [--server-timeout-ms=N (per-request deadline on"
            " the link;\n"
            "        also bounds connect)]\n"
            "       [--server-stats (print the server's stats JSON and"
            " exit)]\n"
            "       [--join=HOST:PORT (ask the first --server node to"
            " add a\n"
            "        node to the ring; prints the response and"
            " exits)]\n"
            "       [--leave=HOST:PORT (ask the first --server node to"
            " remove\n"
            "        a node from the ring; prints the response and"
            " exits)]\n"
            "       [--ring (print the first --server node's epoch,"
            " members\n"
            "        and rebalance counters and exit)]\n"
            "       [--schema (print the JSON result schema and"
            " exit)]\n";
        return 0;
    }

    if (opts.has("list-schemes")) {
        printSchemeCatalog(std::cout,
                           opts.getString("list-schemes", "") ==
                           "names");
        return 0;
    }

    if (opts.getBool("schema", false)) {
        writeResultsSchemaJson(std::cout);
        return 0;
    }

    if (opts.getBool("server-stats", false)) {
        if (!opts.has("server"))
            fatal("--server-stats requires --server=HOST:PORT[,...]");
        serve::ClusterClient client = makeServerClient(opts);
        std::cout << client.stats().dump() << '\n';
        return 0;
    }

    // Admin modes: one membership verb against the first --server
    // node, response printed verbatim. Exit status reflects the
    // server's verdict so scripts can gate on it.
    if (opts.has("join") || opts.has("leave") ||
        opts.getBool("ring", false)) {
        if (!opts.has("server"))
            fatal("--join/--leave/--ring require"
                  " --server=HOST:PORT[,...] (the node coordinating"
                  " the change)");
        serve::ClusterClient client = makeServerClient(opts);
        serve::JsonValue resp;
        if (opts.has("join"))
            resp = client.join(opts.getString("join", ""));
        else if (opts.has("leave"))
            resp = client.leave(opts.getString("leave", ""));
        else
            resp = client.ringInfo();
        std::cout << resp.dump() << '\n';
        return resp.get("ok").asBool(false) ? 0 : 1;
    }

    const std::string bench = opts.getString("bench", "gzip");
    const auto insts = static_cast<std::uint64_t>(
        opts.getInt("insts",
                    static_cast<std::int64_t>(defaultBenchInstructions())));
    const auto warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup",
                    static_cast<std::int64_t>(defaultBenchWarmup())));

    // One JobSpec per benchmark: the shared, network-portable job
    // description both the local and the --server path expand through
    // the identical presets code (the byte-identity contract).
    serve::JobSpec proto;
    proto.scheme = opts.getString("scheme", "dcg");
    proto.depth = static_cast<unsigned>(opts.getInt("depth", 8));
    proto.insts = insts;
    proto.warmup = warmup;
    proto.seed = static_cast<std::uint64_t>(opts.getInt("seed", 1));
    proto.gateIq = opts.getBool("gate-iq", false);
    proto.storeDelay = opts.getBool("store-delay", false);
    proto.roundRobin = opts.getBool("round-robin", false);

    std::vector<std::string> benches;
    if (bench == "all")
        benches = allSpecNames();
    else
        benches.push_back(bench);

    std::vector<serve::JobSpec> specs;
    specs.reserve(benches.size());
    for (const std::string &b : benches) {
        serve::JobSpec s = proto;
        s.bench = b;
        std::string err;
        if (!s.validate(err))
            fatal(err);
        specs.push_back(std::move(s));
    }

    std::vector<RunResult> results;
    if (opts.getBool("dump-stats", false)) {
        if (opts.has("server"))
            fatal("--dump-stats needs the live statistics registry and"
                  " cannot run remotely; drop --server");
        // Dumping needs the live statistics registry, which only the
        // Simulator holds — run serially outside the engine. Matches
        // the engine's numbers via the same per-job seed derivation.
        for (const serve::JobSpec &s : specs) {
            exp::Job job = s.toJob();
            SimConfig seeded = job.config;
            seeded.seed = exp::deriveJobSeed(job);
            Simulator sim(job.profile, seeded);
            sim.run(insts, warmup);
            results.push_back(sim.result());
            std::cout << "---- statistics: " << job.profile.name
                      << " ----\n";
            sim.dumpStats(std::cout);
        }
    } else if (opts.has("server")) {
        serve::ClusterClient client = makeServerClient(opts);
        client.connect();
        results = client.runJobs(specs);
        printServerSummary(specs.size(), client);
    } else {
        exp::Engine engine(resolveJobsOption(opts));
        std::vector<exp::Job> jobs;
        jobs.reserve(specs.size());
        for (const serve::JobSpec &s : specs)
            jobs.push_back(s.toJob());
        results = engine.run(jobs);
        printSummary(specs.size(), engine);
    }

    TextTable t({"bench", "scheme", "IPC", "power (W)", "E/inst (pJ)",
                 "bpred%", "L1D miss%"});
    for (const RunResult &r : results) {
        t.addRow({r.benchmark, r.scheme, TextTable::num(r.ipc, 3),
                  TextTable::num(r.avgPowerW, 2),
                  TextTable::num(r.energyPerInstPJ(), 0),
                  TextTable::pct(r.branchAccuracy),
                  TextTable::pct(r.l1dMissRate)});
    }
    t.print(std::cout);

    if (opts.has("csv"))
        writeResultsCsvFile(results, opts.getString("csv", ""));
    if (opts.has("json"))
        writeResultsJsonFile(results, opts.getString("json", ""));
    return 0;
}
